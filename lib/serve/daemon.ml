(* The resident analyzer daemon: `deepmc serve`.

   One process keeps the two-level [Cache] warm and answers
   line-delimited JSON requests (check / crash-explore / inject /
   stats / shutdown) over a Unix-domain socket or stdio, or re-checks
   a watched directory of .nvmir files in a polling loop. The loop is
   single-threaded on purpose: parallelism lives *inside* a request
   (per-root fan-out on the shared pool), so responses arrive in
   request order and the daemon needs no cross-request locking.
   Between requests the pool is quiesced — every worker parked on its
   condition variable — so an idle daemon consumes ~0% CPU. *)

type t = {
  cache : Cache.t;
  crash_memo : Protocol.json Cache.memo;
  inject_memo : Protocol.json Cache.memo;
  mutable served : int;
}

let create () =
  {
    cache = Cache.create ();
    crash_memo = Cache.memo_create ();
    inject_memo = Cache.memo_create ();
    served = 0;
  }

let served t = t.served

(* ------------------------------------------------------------------ *)
(* Request handlers *)

let parse_model j =
  match Protocol.string_member "model" j with
  | None -> Ok Analysis.Model.Strict
  | Some s -> (
    match Analysis.Model.of_string s with
    | Some m -> Ok m
    | None -> Error (Fmt.str "unknown model %S" s))

let parse_pmem_roots j =
  match Protocol.member "pmem_roots" j with
  | None -> Ok []
  | Some (Protocol.List items) ->
    List.fold_right
      (fun item acc ->
        Result.bind acc (fun acc ->
            match item with
            | Protocol.String s -> (
              match String.index_opt s ':' with
              | Some i ->
                Ok
                  ((String.sub s 0 i,
                    String.sub s (i + 1) (String.length s - i - 1))
                  :: acc)
              | None -> Error (Fmt.str "pmem_roots entry %S: expected FUNC:VAR" s))
            | _ -> Error "pmem_roots entries must be strings"))
      items (Ok [])
  | Some _ -> Error "pmem_roots must be a list"

let required_program j =
  match Protocol.string_member "program" j with
  | Some text -> Ok text
  | None -> Error "missing \"program\" field"

let json_of_strings names =
  Protocol.List (List.map (fun s -> Protocol.String s) names)

let check_response (o : Cache.outcome) =
  [
    ("cache", Protocol.String (Cache.cache_level_name o.Cache.level));
    ( "model",
      Protocol.String (Analysis.Model.to_string o.Cache.summary.Cache.sm_model)
    );
    ( "warnings",
      Protocol.List
        (List.map Deepmc.Json_report.of_warning
           o.Cache.summary.Cache.sm_warnings) );
    ("trace_count", Protocol.Int o.Cache.summary.Cache.sm_trace_count);
    ("event_count", Protocol.Int o.Cache.summary.Cache.sm_event_count);
    ("peak_paths", Protocol.Int o.Cache.summary.Cache.sm_peak_paths);
    ("functions_invalidated", Protocol.Int (List.length o.Cache.invalidated));
    ("invalidated", json_of_strings o.Cache.invalidated);
    ("roots_rechecked", json_of_strings o.Cache.stale);
    ("roots_reused", json_of_strings o.Cache.reused);
  ]

let handle_check t ?id req =
  let ( let* ) = Result.bind in
  let r =
    let* text = required_program req in
    let* model = parse_model req in
    let* persistent_roots = parse_pmem_roots req in
    let name =
      Option.value ~default:"<request>" (Protocol.string_member "name" req)
    in
    let field_sensitive =
      Option.value ~default:true (Protocol.bool_member "field_sensitive" req)
    in
    let params = Cache.default_params ~field_sensitive ~persistent_roots model in
    Cache.check t.cache ~name ~params ~text
  in
  match r with
  | Error msg -> Protocol.error_response ?id msg
  | Ok outcome -> Protocol.ok_response ?id (check_response outcome)

let handle_crash_explore t ?id req =
  let ( let* ) = Result.bind in
  let r =
    let* text = required_program req in
    let entry =
      Option.value ~default:"main" (Protocol.string_member "entry" req)
    in
    let bound =
      Option.value ~default:Runtime.Crash_space.default_bound
        (Protocol.int_member "bound" req)
    in
    let seed = Option.value ~default:1 (Protocol.int_member "seed" req) in
    let psig = Fmt.str "crash|%s|%d|%d" entry bound seed in
    let key = Cache.request_key ~psig text in
    match Nvmir.Parser.parse ~file:"<request>" text with
    | exception Nvmir.Parser.Parse_error (msg, line) ->
      Error (Fmt.str "parse error at line %d: %s" line msg)
    | prog -> (
      match Nvmir.Prog.validate prog with
      | _ :: _ as errs ->
        Error
          (Fmt.str "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Nvmir.Prog.pp_error) errs)
      | [] ->
        if Nvmir.Prog.find_func prog entry = None then
          Error (Fmt.str "entry %s not defined" entry)
        else begin
          let payload, level =
            Cache.memo_find t.crash_memo ~key ~compute:(fun () ->
                let r =
                  Deepmc.Crash_sweep.explore_program ~bound ~seed ~entry prog
                in
                Deepmc.Json_report.of_crash_space r)
          in
          Ok
            [
              ("cache", Protocol.String (Cache.cache_level_name level));
              ("crash_space", payload);
            ]
        end)
  in
  match r with
  | Error msg -> Protocol.error_response ?id msg
  | Ok fields -> Protocol.ok_response ?id fields

let handle_inject t ?id req =
  let ( let* ) = Result.bind in
  let r =
    let* text = required_program req in
    let* model = parse_model req in
    let base =
      Option.value ~default:"<request>" (Protocol.string_member "name" req)
    in
    let* operators =
      match Protocol.member "operators" req with
      | None -> Ok Inject.Mutation.all_operators
      | Some (Protocol.List items) ->
        List.fold_right
          (fun item acc ->
            Result.bind acc (fun acc ->
                match item with
                | Protocol.String s -> (
                  match Inject.Mutation.operator_of_string s with
                  | Some op -> Ok (op :: acc)
                  | None -> Error (Fmt.str "unknown operator %S" s))
                | _ -> Error "operators entries must be strings"))
          items (Ok [])
      | Some _ -> Error "operators must be a list"
    in
    let psig =
      Fmt.str "inject|%s|%s|%a" base
        (Analysis.Model.to_string model)
        Fmt.(list ~sep:(any ",") string)
        (List.map Inject.Mutation.operator_name operators)
    in
    let key = Cache.request_key ~psig text in
    match Nvmir.Parser.parse ~file:base text with
    | exception Nvmir.Parser.Parse_error (msg, line) ->
      Error (Fmt.str "parse error at line %d: %s" line msg)
    | prog -> (
      match Nvmir.Prog.validate prog with
      | _ :: _ as errs ->
        Error
          (Fmt.str "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Nvmir.Prog.pp_error) errs)
      | [] ->
        let payload, level =
          Cache.memo_find t.inject_memo ~key ~compute:(fun () ->
              let roots = Analysis.Trace.default_roots prog in
              let mutants =
                Inject.Mutation.mutate ~operators ~base ~model ~roots prog
              in
              Protocol.List
                (List.map
                   (fun (m : Inject.Mutation.mutant) ->
                     Protocol.String m.Inject.Mutation.id)
                   mutants))
        in
        let count =
          match payload with Protocol.List l -> List.length l | _ -> 0
        in
        Ok
          [
            ("cache", Protocol.String (Cache.cache_level_name level));
            ("mutants", payload);
            ("mutant_count", Protocol.Int count);
          ])
  in
  match r with
  | Error msg -> Protocol.error_response ?id msg
  | Ok fields -> Protocol.ok_response ?id fields

let handle_stats t ?id () =
  let ps = Pool.stats (Pool.default ()) in
  let parks =
    List.fold_left
      (fun acc (w : Pool.worker_stat) -> acc + w.Pool.parks)
      0
      (Pool.worker_stats (Pool.default ()))
  in
  Protocol.ok_response ?id
    [
      ("served", Protocol.Int t.served);
      ( "pool",
        Protocol.Obj
          [
            ("size", Protocol.Int ps.Pool.size);
            ("alive", Protocol.Int ps.Pool.alive);
            ("jobs", Protocol.Int ps.Pool.jobs);
            ("chunks", Protocol.Int ps.Pool.chunks);
            ("parks", Protocol.Int parks);
          ] );
      ( "metrics",
        Deepmc.Json_report.of_metrics (Obs.Metrics.snapshot ()) );
    ]

(* One request in, one response out. [`Quit] carries the final
   response; the transport sends it, then stops. Handler exceptions
   become error responses: a bad request must never kill the
   daemon. *)
(* Every response carries a trace id linking it to the daemon's Obs
   span for the request: the request sequence number plus a digest of
   the request itself. Deterministic — replaying the same conversation
   yields the same ids, so cram tests can pin them — while warm and
   cold answers to one request differ only in the sequence half. *)
let trace_id t req =
  let h =
    Nvmir.Chash.add_string Nvmir.Chash.empty (Protocol.to_line req)
  in
  Fmt.str "%06d-%s" t.served (String.sub (Nvmir.Chash.to_hex h) 0 8)

let stamp_trace tid = function
  | Protocol.Obj fields -> Protocol.Obj (fields @ [ ("trace_id", Protocol.String tid) ])
  | j -> j

let handle t (req : Protocol.json) :
    [ `Reply of Protocol.json | `Quit of Protocol.json ] =
  let id = Protocol.int_member "id" req in
  t.served <- t.served + 1;
  let tid = trace_id t req in
  let t0 = Obs.now_ns () in
  let reply =
    Obs.Span.with_ ~name:"serve-request" ~args:[ ("trace_id", tid) ]
      (fun () ->
        match Protocol.string_member "cmd" req with
        | Some "check" -> `Reply (handle_check t ?id req)
        | Some "crash-explore" -> `Reply (handle_crash_explore t ?id req)
        | Some "inject" -> `Reply (handle_inject t ?id req)
        | Some "stats" -> `Reply (handle_stats t ?id ())
        | Some "shutdown" ->
          `Quit (Protocol.ok_response ?id [ ("bye", Protocol.Bool true) ])
        | Some other ->
          `Reply
            (Protocol.error_response ?id (Fmt.str "unknown cmd %S" other))
        | None -> `Reply (Protocol.error_response ?id "missing \"cmd\" field"))
  in
  Cache.observe_latency (Int64.to_int (Int64.sub (Obs.now_ns ()) t0));
  match reply with
  | `Reply j -> `Reply (stamp_trace tid j)
  | `Quit j -> `Quit (stamp_trace tid j)

let handle_exn t req =
  try handle t req
  with e ->
    `Reply
      (Protocol.error_response
         (Fmt.str "internal error: %s" (Printexc.to_string e)))

let handle_line t line : [ `Reply of string | `Quit of string ] =
  match Protocol.parse line with
  | Error msg -> `Reply (Protocol.to_line (Protocol.error_response msg))
  | Ok req -> (
    match handle_exn t req with
    | `Reply j -> `Reply (Protocol.to_line j)
    | `Quit j -> `Quit (Protocol.to_line j))

(* ------------------------------------------------------------------ *)
(* Transports *)

let over_budget ~max_requests t =
  match max_requests with Some n -> t.served >= n | None -> false

(* stdio transport: deterministic, single client — what the cram test
   drives. *)
let serve_stdio ?max_requests t =
  let quit = ref false in
  (try
     while (not !quit) && not (over_budget ~max_requests t) do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         (match handle_line t line with
         | `Reply s -> print_endline s
         | `Quit s ->
           print_endline s;
           quit := true);
         flush stdout;
         Pool.quiesce (Pool.default ())
       end
     done
   with End_of_file -> ());
  flush stdout

(* Unix-domain socket transport. Connections are served one at a time
   (requests batch internally through the pool); each connection may
   pipeline any number of line-delimited requests. *)
let serve_socket ?max_requests t ~path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  let quit = ref false in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      while (not !quit) && not (over_budget ~max_requests t) do
        Pool.quiesce (Pool.default ());
        let conn, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        (try
           while (not !quit) && not (over_budget ~max_requests t) do
             let line = input_line ic in
             if String.trim line <> "" then begin
               (match handle_line t line with
               | `Reply s -> output_string oc (s ^ "\n")
               | `Quit s ->
                 output_string oc (s ^ "\n");
                 quit := true);
               flush oc
             end
           done
         with End_of_file | Sys_error _ -> ());
        try Unix.close conn with Unix.Unix_error _ -> ()
      done)

(* ------------------------------------------------------------------ *)
(* Watch loop: poll a directory of .nvmir files, re-check what changed *)

type watch_state = {
  w_dir : string;
  w_params : Cache.params;
  mutable w_seen : (string * string) list; (* path -> last digest *)
}

let watch_create ~dir ~params = { w_dir = dir; w_params = params; w_seen = [] }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* One pass: returns (path, outcome-or-error) for every file whose
   content changed since the previous pass, in sorted path order. *)
let watch_scan t (w : watch_state) :
    (string * (Cache.outcome, string) result) list =
  let files =
    Sys.readdir w.w_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".nvmir")
    |> List.sort String.compare
    |> List.map (Filename.concat w.w_dir)
  in
  List.filter_map
    (fun path ->
      match read_file path with
      | exception Sys_error _ -> None (* deleted between readdir and read *)
      | text ->
        let digest =
          Cache.request_key ~psig:(Cache.params_sig w.w_params) text
        in
        if List.assoc_opt path w.w_seen = Some digest then None
        else begin
          w.w_seen <- (path, digest) :: List.remove_assoc path w.w_seen;
          t.served <- t.served + 1;
          Some (path, Cache.check t.cache ~name:path ~params:w.w_params ~text)
        end)
    files

let pp_watch_result ppf (path, r) =
  match r with
  | Error msg -> Fmt.pf ppf "%s: error: %s" (Filename.basename path) msg
  | Ok (o : Cache.outcome) ->
    Fmt.pf ppf "%s: %d warning(s) [%s, %d function(s) invalidated, %d/%d root(s) re-checked]"
      (Filename.basename path)
      (List.length o.Cache.summary.Cache.sm_warnings)
      (Cache.cache_level_name o.Cache.level)
      (List.length o.Cache.invalidated)
      (List.length o.Cache.stale)
      (List.length o.Cache.stale + List.length o.Cache.reused)

let serve_watch ?max_requests ?(interval_ms = 200) ?(once = false) t ~dir
    ~params =
  let w = watch_create ~dir ~params in
  let scan () =
    List.iter (fun r -> Fmt.pr "%a@." pp_watch_result r) (watch_scan t w)
  in
  scan ();
  if not once then
    while not (over_budget ~max_requests t) do
      Pool.quiesce (Pool.default ());
      Unix.sleepf (float_of_int interval_ms /. 1000.);
      scan ()
    done
