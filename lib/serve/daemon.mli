(** The resident analyzer daemon behind [deepmc serve].

    Single-threaded request loop (parallelism lives inside a request,
    fanned out on the shared pool), line-delimited JSON transport over
    stdio or a Unix-domain socket, plus a directory watch loop. The
    pool is quiesced between requests, so an idle daemon consumes ~0%
    CPU. *)

type t

val create : unit -> t
val served : t -> int
(** Requests handled so far (watch re-checks included). *)

val handle :
  t -> Protocol.json -> [ `Reply of Protocol.json | `Quit of Protocol.json ]
(** Dispatch one request (cmd = check | crash-explore | inject | stats
    | shutdown). [`Quit] carries the shutdown acknowledgement. Handler
    exceptions become error responses — a bad request never kills the
    daemon. *)

val handle_line : t -> string -> [ `Reply of string | `Quit of string ]
(** {!handle} pre/post-composed with {!Protocol.parse}/{!Protocol.to_line}. *)

val serve_stdio : ?max_requests:int -> t -> unit
(** Serve requests from stdin to stdout until EOF, a shutdown request,
    or [max_requests]. Deterministic: the cram transport. *)

val serve_socket : ?max_requests:int -> t -> path:string -> unit
(** Bind [path] (removing any stale socket), accept connections one at
    a time, serve each until EOF; stop on shutdown / [max_requests].
    The socket file is removed on exit. *)

(** {1 Watch loop} *)

type watch_state

val watch_create : dir:string -> params:Cache.params -> watch_state

val watch_scan :
  t -> watch_state -> (string * (Cache.outcome, string) result) list
(** One polling pass over [dir]'s [.nvmir] files: re-check every file
    whose bytes changed since the previous pass (sorted path order);
    unchanged files cost one digest each. *)

val pp_watch_result : (string * (Cache.outcome, string) result) Fmt.t

val serve_watch :
  ?max_requests:int ->
  ?interval_ms:int ->
  ?once:bool ->
  t ->
  dir:string ->
  params:Cache.params ->
  unit
(** Poll [dir] every [interval_ms] (default 200), printing one line
    per re-checked file. [once] performs a single pass and returns —
    the testable entry. *)
