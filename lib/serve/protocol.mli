(** Line-delimited JSON wire protocol: one request object per line in,
    one response object per line out. The [json] type is
    {!Deepmc.Json_report.json} (whose printer is pretty/multi-line);
    {!to_line} renders it compactly so framing stays one-line-per-
    message. The parser is a self-contained recursive descent — the
    project's encoder side has no JSON dependency and neither does
    this. *)

type json = Deepmc.Json_report.json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_line : json -> string
(** Compact single-line encoding (ASCII control characters escaped). *)

val parse : string -> (json, string) result

val member : string -> json -> json option
val string_member : string -> json -> string option
val int_member : string -> json -> int option
val bool_member : string -> json -> bool option

val error_response : ?id:int -> string -> json
(** [{"id": id?, "status": "error", "error": msg}]. *)

val ok_response : ?id:int -> (string * json) list -> json
(** [{"id": id?, "status": "ok", ...fields}]. *)
