(** Warning provenance: correlate every tier's witnesses for one
    program into evidence bundles, and render them as an annotated IR
    listing (`deepmc explain`) or machine-readable JSON.

    The bundle key is {!Analysis.Witness.bundle_fingerprint} — the
    tier-independent (rule, file, line) identity — so a bug the static
    checker, the dynamic checker and the fuzzer each observed renders
    as one bundle with one witness per tier. Crash-space witnesses
    (which carry no warning) form their own bundles keyed by witness
    fingerprint. *)

type evidence = {
  ev_tier : string;
  ev_warning : Analysis.Warning.t option;
      (** [None] for crash-space image witnesses *)
  ev_witness : Analysis.Witness.t;
  ev_fingerprint : string;
}

type bundle = {
  b_fingerprint : string;
  b_rule : string option;
  b_loc : Nvmir.Loc.t option;
  b_fname : string option;
  b_evidence : evidence list;
}

val tiers : bundle -> string list
(** Observing tiers, in static..recover order. *)

val build : ?fuzz:Fuzz.Campaign.outcome -> Deepmc.Driver.report -> bundle list
(** Collect witnesses from the report's tiers (read before the driver's
    cross-tier dedup) plus an optional fuzz campaign, correlate, and
    order deterministically: located bundles by (loc, rule), crash-space
    bundles after by fingerprint. *)

val annotate_listing : Nvmir.Prog.t -> bundle list -> string
(** The canonical IR listing with per-line [;; #N:role] event markers. *)

val render :
  file:string -> model:Analysis.Model.t -> prog:Nvmir.Prog.t ->
  bundle list -> string
(** Human-readable explain output: bundle blocks plus the annotated
    listing. *)

val to_json :
  file:string -> model:Analysis.Model.t -> bundle list ->
  Deepmc.Json_report.json

val witness_of_json : Deepmc.Json_report.json -> Analysis.Witness.t option
(** Inverse of {!Deepmc.Json_report.of_witness} (the encoder's
    ["fingerprint"] field is ignored and recomputable). *)
