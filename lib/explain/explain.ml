(* Warning provenance: collect every tier's witnesses for one program
   and correlate them into evidence bundles.

   The driver's merged warning list deduplicates by (rule, file, line)
   across tiers — exactly the information provenance needs to keep — so
   this module reads the tiers *before* the merge: the static checker
   result, the dynamic outcome, the recovery report, the crash-space
   witnesses and an optional fuzz campaign. Observations of the same
   bug share a bundle fingerprint ([Witness.bundle_fingerprint], the
   tier-independent bug identity) and render as one bundle with one
   witness per observing tier. *)

let m_witnesses =
  Obs.Metrics.counter "explain.witnesses"
    ~desc:"witnesses collected across tiers by the provenance engine"

let m_bundles =
  Obs.Metrics.counter "explain.bundles"
    ~desc:"evidence bundles after cross-tier correlation"

type evidence = {
  ev_tier : string;
  ev_warning : Analysis.Warning.t option; (* None for crash-space images *)
  ev_witness : Analysis.Witness.t;
  ev_fingerprint : string;
}

type bundle = {
  b_fingerprint : string;
  b_rule : string option; (* None for crash-space bundles *)
  b_loc : Nvmir.Loc.t option;
  b_fname : string option;
  b_evidence : evidence list; (* tier order: static..recover *)
}

let tier_rank = function
  | "static" -> 0
  | "dynamic" -> 1
  | "fuzz" -> 2
  | "crash" -> 3
  | "recover" -> 4
  | _ -> 5

let tiers b =
  List.sort_uniq
    (fun a b -> Int.compare (tier_rank a) (tier_rank b))
    (List.map (fun e -> e.ev_tier) b.b_evidence)

(* ------------------------------------------------------------------ *)
(* Collection *)

let evidence_of_warning ~tier (w : Analysis.Warning.t) =
  match w.Analysis.Warning.witness with
  | None -> None
  | Some wit ->
    Some
      {
        ev_tier = tier;
        ev_warning = Some w;
        ev_witness = wit;
        ev_fingerprint = Analysis.Witness.fingerprint wit;
      }

let crash_task_name = function
  | Runtime.Crash_space.Point k -> Fmt.str "point %d" k
  | Runtime.Crash_space.Exit -> "exit"

let evidence_of_crash (cw : Runtime.Crash_space.witness) =
  let wit =
    Analysis.Witness.Crash
      {
        c_task = crash_task_name cw.Runtime.Crash_space.w_task;
        c_image = Analysis.Witness.image_id cw.Runtime.Crash_space.w_persisted;
        c_persisted = cw.Runtime.Crash_space.w_persisted;
        c_detail = cw.Runtime.Crash_space.w_detail;
      }
  in
  {
    ev_tier = "crash";
    ev_warning = None;
    ev_witness = wit;
    ev_fingerprint = Analysis.Witness.fingerprint wit;
  }

let build ?fuzz (report : Deepmc.Driver.report) : bundle list =
  let warn_evidence =
    List.concat
      [
        List.filter_map
          (evidence_of_warning ~tier:"static")
          report.Deepmc.Driver.static.Analysis.Checker.warnings;
        (match report.Deepmc.Driver.dynamic with
        | Deepmc.Driver.Dynamic_ok (_, ws) ->
          List.filter_map (evidence_of_warning ~tier:"dynamic") ws
        | Deepmc.Driver.Dynamic_skipped _ -> []);
        (match fuzz with
        | Some (o : Fuzz.Campaign.outcome) ->
          List.filter_map
            (evidence_of_warning ~tier:"fuzz")
            o.Fuzz.Campaign.warnings
        | None -> []);
        (match report.Deepmc.Driver.recovery with
        | Some r ->
          List.filter_map
            (evidence_of_warning ~tier:"recover")
            r.Recover.warnings
        | None -> []);
      ]
  in
  let crash_evidence =
    match report.Deepmc.Driver.crash_space with
    | Some cs ->
      List.map evidence_of_crash cs.Runtime.Crash_space.witnesses
    | None -> []
  in
  (* Group by bundle key; keep one witness per (tier, fingerprint). *)
  let groups : (string, evidence list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let add key e =
    match Hashtbl.find_opt groups key with
    | Some l ->
      if
        not
          (List.exists
             (fun e' ->
               e'.ev_tier = e.ev_tier && e'.ev_fingerprint = e.ev_fingerprint)
             !l)
      then l := e :: !l
    | None ->
      Hashtbl.replace groups key (ref [ e ]);
      order := key :: !order
  in
  List.iter
    (fun e ->
      match e.ev_warning with
      | Some w -> add (Analysis.Warning.bundle_fingerprint w) e
      | None -> assert false)
    warn_evidence;
  List.iter (fun e -> add e.ev_fingerprint e) crash_evidence;
  let bundles =
    List.rev_map
      (fun key ->
        let evidence =
          List.sort
            (fun a b ->
              match Int.compare (tier_rank a.ev_tier) (tier_rank b.ev_tier) with
              | 0 -> String.compare a.ev_fingerprint b.ev_fingerprint
              | c -> c)
            !(Hashtbl.find groups key)
        in
        let first_warning =
          List.find_map (fun e -> e.ev_warning) evidence
        in
        {
          b_fingerprint = key;
          b_rule =
            Option.map
              (fun (w : Analysis.Warning.t) ->
                Analysis.Warning.rule_name w.Analysis.Warning.rule)
              first_warning;
          b_loc =
            Option.map
              (fun (w : Analysis.Warning.t) -> w.Analysis.Warning.loc)
              first_warning;
          b_fname =
            Option.map
              (fun (w : Analysis.Warning.t) -> w.Analysis.Warning.fname)
              first_warning;
          b_evidence = evidence;
        })
      !order
  in
  (* Deterministic order: located bundles by (loc, rule), crash-space
     bundles after, by fingerprint. *)
  let sorted =
    List.sort
      (fun a b ->
        match (a.b_loc, b.b_loc) with
        | Some la, Some lb -> (
          match Nvmir.Loc.compare la lb with
          | 0 ->
            compare (Option.value ~default:"" a.b_rule)
              (Option.value ~default:"" b.b_rule)
          | c -> c)
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> String.compare a.b_fingerprint b.b_fingerprint)
      bundles
  in
  Obs.Metrics.add m_witnesses
    (List.fold_left (fun n b -> n + List.length b.b_evidence) 0 sorted);
  Obs.Metrics.add m_bundles (List.length sorted);
  sorted

(* ------------------------------------------------------------------ *)
(* Annotated IR listing

   The canonical pretty-printed program with per-line event markers:
   every line whose '@ file:line' annotation appears in a bundle's
   witness slice (or warning location) is tagged with the bundle index
   and the role the event plays. *)

let listing_markers bundles =
  (* loc string -> (bundle index, marker) list, insertion-ordered *)
  let marks : (string, (int * string) list ref) Hashtbl.t = Hashtbl.create 32 in
  let add loc m =
    let key = Nvmir.Loc.to_string loc in
    match Hashtbl.find_opt marks key with
    | Some l -> if not (List.mem m !l) then l := m :: !l
    | None -> Hashtbl.replace marks key (ref [ m ])
  in
  List.iteri
    (fun i b ->
      let idx = i + 1 in
      (match (b.b_loc, b.b_rule) with
      | Some loc, Some rule -> add loc (idx, "!" ^ rule)
      | _ -> ());
      List.iter
        (fun e ->
          match e.ev_witness with
          | Analysis.Witness.Static { s_slice; _ } ->
            List.iter
              (fun (r : Analysis.Witness.event_ref) ->
                add r.Analysis.Witness.er_loc
                  (idx, r.Analysis.Witness.er_role))
              s_slice
          | _ -> ())
        b.b_evidence)
    bundles;
  fun loc_str ->
    match Hashtbl.find_opt marks loc_str with
    | Some l ->
      List.sort
        (fun (i, a) (j, b) ->
          match Int.compare i j with 0 -> String.compare a b | c -> c)
        (List.rev !l)
    | None -> []

(* Find the '@ file:line' annotation on a printed IR line, if any. *)
let loc_annotation line =
  match String.index_opt line '@' with
  | None -> None
  | Some i ->
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    let rest = String.trim rest in
    if rest = "" then None else Some rest

let annotate_listing prog bundles : string =
  let markers = listing_markers bundles in
  let text = Fmt.str "%a" Nvmir.Prog.pp prog in
  let buf = Buffer.create (String.length text * 2) in
  let lines =
    (* the pretty-printer's trailing newlines would render as empty
       numbered rows *)
    let rec drop = function "" :: tl -> drop tl | ls -> ls in
    List.rev (drop (List.rev (String.split_on_char '\n' text)))
  in
  List.iteri
    (fun i line ->
      let ms =
        match loc_annotation line with Some l -> markers l | None -> []
      in
      if ms = [] then Buffer.add_string buf (Fmt.str "  %4d | %s\n" (i + 1) line)
      else
        Buffer.add_string buf
          (Fmt.str "  %4d | %-44s ;; %s\n" (i + 1) line
             (String.concat " "
                (List.map (fun (idx, m) -> Fmt.str "#%d:%s" idx m) ms))))
    lines;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_evidence ppf e =
  Fmt.pf ppf "@[<v 2>[%s] witness %s%s@ %a@]" e.ev_tier e.ev_fingerprint
    (match e.ev_warning with
    | Some w -> Fmt.str " — %s" w.Analysis.Warning.message
    | None -> "")
    Analysis.Witness.pp e.ev_witness

let pp_bundle ppf (i, b) =
  let header =
    match (b.b_rule, b.b_loc, b.b_fname) with
    | Some rule, Some loc, Some fname ->
      Fmt.str "[%s] %s (%s)" rule (Nvmir.Loc.to_string loc) fname
    | _ -> "crash-space inconsistency"
  in
  Fmt.pf ppf "@[<v>== bundle #%d %s %s ==@ tiers: %s@ %a@]" i
    b.b_fingerprint header
    (String.concat "+" (tiers b))
    Fmt.(list ~sep:cut pp_evidence)
    b.b_evidence

let render ~file ~model ~prog bundles : string =
  let nev = List.fold_left (fun n b -> n + List.length b.b_evidence) 0 bundles in
  let header =
    Fmt.str "explain %s (%s model): %d witness(es) in %d evidence bundle(s)"
      file
      (Analysis.Model.to_string model)
      nev (List.length bundles)
  in
  if bundles = [] then header ^ "\nno warnings: nothing to explain\n"
  else
    Fmt.str "%s@.@.%a@.@.annotated listing:@.%s" header
      Fmt.(
        list ~sep:(any "@.@.") (fun ppf (i, b) -> pp_bundle ppf (i, b)))
      (List.mapi (fun i b -> (i + 1, b)) bundles)
      (annotate_listing prog bundles)

(* ------------------------------------------------------------------ *)
(* JSON *)

let to_json ~file ~model bundles : Deepmc.Json_report.json =
  let open Deepmc.Json_report in
  let of_evidence e =
    Obj
      [
        ("tier", String e.ev_tier);
        ("fingerprint", String e.ev_fingerprint);
        ( "warning",
          match e.ev_warning with Some w -> of_warning w | None -> Null );
        ("witness", of_witness e.ev_witness);
      ]
  in
  let of_bundle b =
    Obj
      ([ ("fingerprint", String b.b_fingerprint) ]
      @ (match b.b_rule with Some r -> [ ("rule", String r) ] | None -> [])
      @ (match b.b_loc with
        | Some loc ->
          [
            ("file", String loc.Nvmir.Loc.file);
            ("line", Int loc.Nvmir.Loc.line);
          ]
        | None -> [])
      @ (match b.b_fname with
        | Some f -> [ ("function", String f) ]
        | None -> [])
      @ [
          ("tiers", List (List.map (fun t -> String t) (tiers b)));
          ("evidence", List (List.map of_evidence b.b_evidence));
        ])
  in
  Obj
    [
      ("file", String file);
      ("model", String (Analysis.Model.to_string model));
      ("bundles", List (List.map of_bundle bundles));
    ]

(* ------------------------------------------------------------------ *)
(* Witness decoding — the inverse of [Json_report.of_witness], used by
   clients consuming serve/report output and pinned against the encoder
   by a QCheck round-trip property. *)

let member k = function
  | Deepmc.Json_report.Obj fields -> List.assoc_opt k fields
  | _ -> None

let string_member k j =
  match member k j with
  | Some (Deepmc.Json_report.String s) -> Some s
  | _ -> None

let int_member k j =
  match member k j with
  | Some (Deepmc.Json_report.Int n) -> Some n
  | _ -> None

let list_member k j =
  match member k j with
  | Some (Deepmc.Json_report.List l) -> Some l
  | _ -> None

let lines_of_json l =
  List.filter_map
    (fun item ->
      match (int_member "obj" item, int_member "line" item) with
      | Some obj, Some line -> Some (obj, line)
      | _ -> None)
    l

let witness_of_json (j : Deepmc.Json_report.json) : Analysis.Witness.t option =
  let ( let* ) = Option.bind in
  let* tier = string_member "tier" j in
  match tier with
  | "static" ->
    let slice =
      match list_member "slice" j with
      | Some items ->
        List.filter_map
          (fun item ->
            let* role = string_member "role" item in
            let* what = string_member "what" item in
            let* file = string_member "file" item in
            let* line = int_member "line" item in
            let* fname = string_member "function" item in
            Some
              (Analysis.Witness.event_ref ~role ~what
                 ~loc:(Nvmir.Loc.make ~file ~line) ~fname))
          items
      | None -> []
    in
    let call_path =
      match list_member "call_path" j with
      | Some items ->
        List.filter_map
          (function Deepmc.Json_report.String s -> Some s | _ -> None)
          items
      | None -> []
    in
    Some (Analysis.Witness.Static { s_slice = slice; s_call_path = call_path })
  | "dynamic" ->
    let* transition = string_member "transition" j in
    let* strand = int_member "strand" j in
    let* fences = int_member "fences" j in
    Some
      (Analysis.Witness.Dynamic
         { d_transition = transition; d_strand = strand; d_fences = fences })
  | "fuzz" ->
    let* genome = string_member "genome" j in
    let* schedule = string_member "schedule" j in
    let* transition = string_member "transition" j in
    Some
      (Analysis.Witness.Fuzz
         { f_genome = genome; f_schedule = schedule; f_transition = transition })
  | "crash" ->
    let* task = string_member "at" j in
    let* image = string_member "image" j in
    let* detail = string_member "detail" j in
    let persisted =
      match list_member "persisted" j with
      | Some l -> lines_of_json l
      | None -> []
    in
    Some
      (Analysis.Witness.Crash
         {
           c_task = task;
           c_image = image;
           c_persisted = persisted;
           c_detail = detail;
         })
  | "recover" ->
    let* task = string_member "at" j in
    let* image = string_member "image" j in
    let* verdict = string_member "verdict" j in
    let persisted =
      match list_member "persisted" j with
      | Some l -> lines_of_json l
      | None -> []
    in
    let corruptions =
      match list_member "corruptions" j with
      | Some l ->
        List.filter_map
          (fun item ->
            let* obj = int_member "obj" item in
            let* slot = int_member "slot" item in
            let* kind = string_member "kind" item in
            Some (obj, slot, kind))
          l
      | None -> []
    in
    Some
      (Analysis.Witness.Recover
         {
           r_task = task;
           r_image = image;
           r_persisted = persisted;
           r_corruptions = corruptions;
           r_verdict = verdict;
         })
  | _ -> None
