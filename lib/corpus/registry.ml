(* Registry over the whole corpus plus aggregate queries used by the
   benches that regenerate Tables 1, 2, 3 and 8. *)

open Types

let all : program list =
  Pmdk.programs @ Nvm_direct.programs @ Pmfs.programs @ Mnemosyne.programs

let find name = List.find_opt (fun p -> String.equal p.name name) all

let by_framework fw = List.filter (fun p -> p.framework = fw) all

(* Analyze one corpus program with the full pipeline and score it. *)
let analyze ?(field_sensitive = true) ?(offset_sensitive = true)
    ?(run_dynamic = true) ?(config = Analysis.Config.default) (p : program) =
  let prog = parse p in
  let driver =
    Deepmc.Driver.make ~config ~field_sensitive ~offset_sensitive ~run_dynamic
      (model p)
  in
  let report =
    Deepmc.Driver.analyze driver ~roots:p.roots ~entry:p.entry
      ~args:p.entry_args prog
  in
  let score = Deepmc.Report.score (expectations p) report.Deepmc.Driver.warnings in
  (report, score)

type framework_totals = {
  framework : framework;
  validated : int;
  warnings : int;
  per_rule : (Analysis.Warning.rule_id * (int * int)) list;
      (* rule -> validated/warnings *)
}

(* Aggregate checker results per framework: the cells of Table 1. *)
let table1 ?field_sensitive ?run_dynamic ?config () : framework_totals list =
  List.map
    (fun fw ->
      let scores =
        List.map
          (fun p -> snd (analyze ?field_sensitive ?run_dynamic ?config p))
          (by_framework fw)
      in
      let validated =
        List.fold_left (fun a s -> a + Deepmc.Report.validated_count s) 0 scores
      in
      let warnings =
        List.fold_left (fun a s -> a + Deepmc.Report.warning_count s) 0 scores
      in
      let per_rule =
        List.map
          (fun rule ->
            let v =
              List.fold_left
                (fun a s ->
                  a
                  + List.length
                      (List.filter
                         (fun ((e : Deepmc.Report.expectation), _) ->
                           e.Deepmc.Report.validated
                           && e.Deepmc.Report.rule = rule)
                         s.Deepmc.Report.matched))
                0 scores
            in
            let w =
              List.fold_left
                (fun a s ->
                  a
                  + List.length
                      (List.filter
                         (fun (x : Analysis.Warning.t) ->
                           x.Analysis.Warning.rule = rule)
                         s.Deepmc.Report.warnings))
                0 scores
            in
            (rule, (v, w)))
          Analysis.Warning.all_rules
      in
      { framework = fw; validated; warnings; per_rule })
    all_frameworks

(* Ground-truth statistics (Tables 2, 3 and 8 are printed from these). *)
let studied_bugs () =
  List.concat_map
    (fun p ->
      List.filter_map
        (fun ((e : Deepmc.Report.expectation), d) ->
          if e.Deepmc.Report.validated && not e.Deepmc.Report.is_new then
            Some (p, e, d)
          else None)
        p.expectations)
    all

let new_bugs () =
  List.concat_map
    (fun p ->
      List.filter_map
        (fun ((e : Deepmc.Report.expectation), d) ->
          if e.Deepmc.Report.validated && e.Deepmc.Report.is_new then
            Some (p, e, d)
          else None)
        p.expectations)
    all

let benign_patterns () =
  List.concat_map
    (fun p ->
      List.filter_map
        (fun ((e : Deepmc.Report.expectation), d) ->
          if not e.Deepmc.Report.validated then Some (p, e, d) else None)
        p.expectations)
    all

let is_violation (e : Deepmc.Report.expectation) =
  Analysis.Warning.category_of_rule e.Deepmc.Report.rule
  = Analysis.Warning.Model_violation
