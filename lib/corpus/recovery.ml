(* Recovery corpus: base programs for the recovery tier (media
   corruption + recovery-path verification). These are NOT part of
   [Registry.all] — the static recall matrix and Table benches are
   pinned to the paper's corpus — but feed the recovery-recall
   evaluation ([Evaluate.run_recovery]) and its cram-pinned bench.

   Both bases share the same forward path: stage a two-field data
   region, checksum it, persist, then publish a generation marker.
   [main] invokes [recover] at startup before the forward path, as a
   real program would — on a fresh heap the guarded base rejects and
   the unguarded base replays zeros — which also unifies [recover]'s
   parameters with the pmem allocations in the points-to graph, so the
   mutation operators see its stores as persistent. The
   data region and the metadata deliberately live in different objects,
   so data-line and crc-line corruption stay independent of the
   configured cache-line width. The [guarded] base validates the
   region against the stored CRC before replaying it and is clean
   under the recovery tier; [unguarded] replays through plain loads
   and accepts every image — the new-class bug the static tier cannot
   see. *)

open Types

let forward_path =
  {|
struct jdata { d0: int, d1: int }
struct jmeta { crc: int, gen: int, applied: int }

func prepare(d: ptr jdata, m: ptr jmeta) {
entry:
  epoch_begin                    @ jrec.c:10
  store d->d0, 7                 @ jrec.c:11
  flush exact d->d0              @ jrec.c:12
  fence                          @ jrec.c:13
  store d->d1, 9                 @ jrec.c:14
  flush exact d->d1              @ jrec.c:15
  fence                          @ jrec.c:16
  c = crc object d               @ jrec.c:17
  store m->crc, c                @ jrec.c:18
  flush exact m->crc             @ jrec.c:19
  fence                          @ jrec.c:20
  epoch_end                      @ jrec.c:21
  epoch_begin                    @ jrec.c:22
  store m->gen, 1                @ jrec.c:23
  flush exact m->gen             @ jrec.c:24
  fence                          @ jrec.c:25
  epoch_end                      @ jrec.c:26
  ret
}

func main() {
entry:
  d = alloc pmem jdata
  m = alloc pmem jmeta
  r = call recover(d, m)
  call prepare(d, m)
  ret
}
|}

let guarded =
  {
    name = "journal_recover_crc";
    framework = Pmfs;
    description =
      "Journal recovery that validates the data region against its stored \
       CRC before replaying it; clean under the recovery tier";
    entry = "main";
    entry_args = [];
    roots = [ "main"; "recover" ];
    expectations = [];
    source =
      forward_path
      ^ {|
func recover(d: ptr jdata, m: ptr jmeta) -> int {
entry:
  ok = crc_check object d, m->crc  @ jrec.c:42
  br ok, replay, reject
replay:
  a = load d->d0                 @ jrec.c:45
  b = load d->d1                 @ jrec.c:46
  t = a + b
  store m->applied, t            @ jrec.c:48
  flush exact m->applied         @ jrec.c:49
  fence                          @ jrec.c:50
  store m->gen, 1                @ jrec.c:51
  flush exact m->gen             @ jrec.c:52
  fence                          @ jrec.c:53
  ret 0
reject:
  ret 1
}
|};
    fixed_source = None;
  }

let unguarded =
  {
    name = "journal_recover";
    framework = Pmfs;
    description =
      "Journal recovery that replays the data region through plain loads \
       and accepts every image: unguarded reads and silent corruption \
       acceptance";
    entry = "main";
    entry_args = [];
    roots = [ "main"; "recover" ];
    expectations = [];
    source =
      forward_path
      ^ {|
func recover(d: ptr jdata, m: ptr jmeta) -> int {
entry:
  a = load d->d0                 @ jrec.c:32
  b = load d->d1                 @ jrec.c:33
  t = a + b
  store m->applied, t            @ jrec.c:35
  flush exact m->applied         @ jrec.c:36
  fence                          @ jrec.c:37
  ret 0
}
|};
    fixed_source = None;
  }

let programs = [ guarded; unguarded ]
