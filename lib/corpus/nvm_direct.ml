(* NVM-Direct corpus (strict persistency): library slices of
   nvm_region.c, nvm_heap.c and nvm_locks.c, including Figure 3 (missing
   persist barrier after a region flush), Figure 6 (redundant flush
   across caller/callee) and Figure 9 / Figure 10 (the nvm_lock function
   whose new_level update is never flushed). *)

open Types

let w = Analysis.Warning.Unflushed_write
let mb = Analysis.Warning.Missing_persist_barrier
let mf = Analysis.Warning.Multiple_flushes
let fu = Analysis.Warning.Flush_unmodified
let dt = Analysis.Warning.Durable_tx_no_writes

let nvm_region =
  {
    name = "nvm_region";
    framework = Nvm_direct;
    description =
      "Region management (Fig. 3): the freshly-initialized region is \
       flushed but not fenced before the next transaction begins";
    entry = "nvm_region_driver_all";
    entry_args = [];
    roots = [ "nvm_region_driver_create"; "nvm_region_driver_attach" ];
    source =
      {|
struct nvm_region_t { state: int, vsize: int }

# Figure 3: nvm_create_region flushes the region header and immediately
# begins a transaction with no intervening persist barrier.
func nvm_create_region(region: ptr nvm_region_t) {
entry:
  store region->state, 1         @ nvm_region.c:609
  store region->vsize, 0         @ nvm_region.c:610
  flush object region            @ nvm_region.c:614
  tx_begin                       @ nvm_region.c:618
  tx_add exact region->vsize     @ nvm_region.c:619
  store region->vsize, 64        @ nvm_region.c:620
  tx_end                         @ nvm_region.c:622
  ret
}

func nvm_attach_region(region: ptr nvm_region_t) {
entry:
  store region->state, 2         @ nvm_region.c:928
  store region->vsize, 0         @ nvm_region.c:929
  flush object region            @ nvm_region.c:933
  tx_begin                       @ nvm_region.c:937
  tx_add exact region->vsize     @ nvm_region.c:938
  store region->vsize, 128       @ nvm_region.c:939
  tx_end                         @ nvm_region.c:941
  ret
}

func nvm_region_driver_create() {
entry:
  r = alloc pmem nvm_region_t
  call nvm_create_region(r)
  ret
}

func nvm_region_driver_attach() {
entry:
  r = alloc pmem nvm_region_t
  call nvm_attach_region(r)
  ret
}

func nvm_region_driver_all() {
entry:
  call nvm_region_driver_create()
  call nvm_region_driver_attach()
  ret
}
|};
    fixed_source =
      Some
        {|
struct nvm_region_t { state: int, vsize: int }

func nvm_create_region(region: ptr nvm_region_t) {
entry:
  store region->state, 1
  store region->vsize, 0
  flush object region
  fence
  tx_begin
  tx_add exact region->vsize
  store region->vsize, 64
  tx_end
  ret
}

func nvm_region_driver_all() {
entry:
  r = alloc pmem nvm_region_t
  call nvm_create_region(r)
  ret
}
|};
    expectations =
      [
        exp ~rule:mb ~file:"nvm_region.c" ~line:614 ~kind:Deepmc.Report.Lib
          "Missing persist barrier between epoch transactions (Fig. 3)";
        exp ~rule:mb ~file:"nvm_region.c" ~line:933 ~kind:Deepmc.Report.Lib
          "Missing persist barrier between epoch transactions";
      ];
  }

let nvm_heap =
  {
    name = "nvm_heap";
    framework = Nvm_direct;
    description =
      "Heap management: Fig. 6 redundant write-back across caller and \
       callee, a flush of never-modified free-list metadata, and a \
       pointer-arithmetic flush the offset lattice proves covered";
    entry = "nvm_heap_driver_all";
    entry_args = [];
    roots =
      [ "nvm_heap_driver_free"; "nvm_heap_driver_init"; "nvm_heap_driver_repair" ];
    source =
      {|
struct nvm_blk { state: int, next: int }
struct nvm_heap_t { free: int, size: int }

# Figure 6: nvm_free_blk flushes the block; nvm_free_callback flushes
# the same block again with no intervening modification.
func nvm_free_blk(blk: ptr nvm_blk) {
entry:
  store blk->state, 0            @ nvm_heap.c:1950
  flush exact blk->state         @ nvm_heap.c:1952
  fence                          @ nvm_heap.c:1953
  ret
}

func nvm_free_callback(blk: ptr nvm_blk) {
entry:
  call nvm_free_blk(blk)
  flush exact blk->state         @ nvm_heap.c:1965
  fence                          @ nvm_heap.c:1966
  ret
}

# New bug (Table 8): the free pointer is written back although nothing
# modified it.
func nvm_heap_init(heap: ptr nvm_heap_t) {
entry:
  flush exact heap->free         @ nvm_heap.c:1675
  fence                          @ nvm_heap.c:1676
  ret
}

# Resolved false positive (Section 5.4): q = heap + 0 aliases heap
# under the offset lattice, so the flush is recognized as covering the
# q-write — no warning any more.
func nvm_heap_repair(heap: ptr nvm_heap_t) {
entry:
  q = heap + 0
  store q->size, 1               @ nvm_heap.c:1698
  flush exact heap->size         @ nvm_heap.c:1700
  fence                          @ nvm_heap.c:1701
  ret
}

func nvm_heap_driver_free() {
entry:
  blk = alloc pmem nvm_blk
  call nvm_free_callback(blk)
  ret
}

func nvm_heap_driver_init() {
entry:
  h = alloc pmem nvm_heap_t
  call nvm_heap_init(h)
  ret
}

func nvm_heap_driver_repair() {
entry:
  h = alloc pmem nvm_heap_t
  call nvm_heap_repair(h)
  ret
}

func nvm_heap_driver_all() {
entry:
  call nvm_heap_driver_free()
  call nvm_heap_driver_init()
  call nvm_heap_driver_repair()
  ret
}
|};
    fixed_source =
      Some
        {|
struct nvm_blk { state: int, next: int }
struct nvm_heap_t { free: int, size: int }

func nvm_free_blk(blk: ptr nvm_blk) {
entry:
  store blk->state, 0
  flush exact blk->state
  fence
  ret
}

func nvm_free_callback(blk: ptr nvm_blk) {
entry:
  call nvm_free_blk(blk)
  ret
}

func nvm_heap_init(heap: ptr nvm_heap_t) {
entry:
  ret
}

func nvm_heap_driver_all() {
entry:
  blk = alloc pmem nvm_blk
  call nvm_free_callback(blk)
  h = alloc pmem nvm_heap_t
  call nvm_heap_init(h)
  ret
}
|};
    expectations =
      [
        exp ~rule:mf ~file:"nvm_heap.c" ~line:1965 ~kind:Deepmc.Report.Lib
          "Redundant flushes of persistent object (Fig. 6, across \
           caller/callee)";
        exp ~rule:fu ~file:"nvm_heap.c" ~line:1675 ~is_new:true ~years:5.3
          ~kind:Deepmc.Report.Lib
          "Flushing unmodified fields of an object";
        (* nvm_heap.c:1700 used to carry a benign fu warning here: the
           offset lattice now proves q = heap + 0 aliases heap, so the
           flush is recognized as covering the q-write. *)
      ];
  }

let nvm_locks =
  {
    name = "nvm_locks";
    framework = Nvm_direct;
    description =
      "Lock records (Fig. 9/10): new_level update never flushed, an \
       empty durable transaction, a whole-record persist after a \
       single-field update, and a benign whole-record write-back in the \
       upgrade shim";
    entry = "nvm_locks_driver_all";
    entry_args = [];
    roots =
      [
        "nvm_locks_driver_lock";
        "nvm_locks_driver_unlock";
        "nvm_locks_driver_release";
        "nvm_locks_driver_upgrade";
      ];
    source =
      {|
struct nvm_lkrec { state: int, new_level: int, owner: int }
struct nvm_amutex { owners: int, level: int, waiters: int }

# Figure 9: the conditional update of lk->new_level at line 932 is never
# made durable; DeepMC reports it when the fence at 936 arrives with
# only lk->state flushed (Fig. 10 walks the DSG for this function).
func nvm_lock(omutex: ptr nvm_amutex) {
entry:
  mutex = omutex
  lk = alloc pmem nvm_lkrec      @ nvm_locks.c:920
  store lk->state, 1             @ nvm_locks.c:922
  persist exact lk->state        @ nvm_locks.c:923
  store mutex->owners, 0         @ nvm_locks.c:925
  persist exact mutex->owners    @ nvm_locks.c:926
  lvl = load mutex->level
  nl = load lk->new_level
  c = lvl > nl
  br c, raise_level, done
raise_level:
  store lk->new_level, 2         @ nvm_locks.c:932
  br done
done:
  store lk->state, 3             @ nvm_locks.c:935
  persist exact lk->state        @ nvm_locks.c:936
  ret
}

# New bug (Table 8): the unlock path opens a durable transaction that
# performs no persistent write.
func nvm_unlock(mutex: ptr nvm_amutex) {
entry:
  tx_begin                       @ nvm_locks.c:905
  tx_end                         @ nvm_locks.c:907
  ret
}

# New bug (Table 8): the whole lock record is persisted although only
# the owner field changed.
func nvm_release(lk: ptr nvm_lkrec) {
entry:
  store lk->owner, 0             @ nvm_locks.c:1409
  persist object lk              @ nvm_locks.c:1411
  ret
}

# Section 5.4 shim, resolved: q = mutex + 0 aliases mutex under the
# offset lattice, so the shim write is visible statically. The persist
# is no longer empty-looking; instead the whole-record write-back after
# a single-field update draws a benign flushing-unmodified warning.
func nvm_lock_upgrade(mutex: ptr nvm_amutex) {
entry:
  q = mutex + 0
  store q->owners, 1             @ nvm_locks.c:908
  persist object mutex           @ nvm_locks.c:910
  ret
}

func nvm_locks_driver_lock() {
entry:
  m = alloc pmem nvm_amutex
  call nvm_lock(m)
  ret
}

func nvm_locks_driver_unlock() {
entry:
  m = alloc pmem nvm_amutex
  call nvm_unlock(m)
  ret
}

func nvm_locks_driver_release() {
entry:
  lk = alloc pmem nvm_lkrec
  call nvm_release(lk)
  ret
}

func nvm_locks_driver_upgrade() {
entry:
  m = alloc pmem nvm_amutex
  call nvm_lock_upgrade(m)
  ret
}

func nvm_locks_driver_all() {
entry:
  call nvm_locks_driver_lock()
  call nvm_locks_driver_unlock()
  call nvm_locks_driver_release()
  call nvm_locks_driver_upgrade()
  ret
}
|};
    fixed_source =
      Some
        {|
struct nvm_lkrec { state: int, new_level: int, owner: int }
struct nvm_amutex { owners: int, level: int, waiters: int }

func nvm_lock(omutex: ptr nvm_amutex) {
entry:
  mutex = omutex
  lk = alloc pmem nvm_lkrec
  store lk->state, 1
  persist exact lk->state
  store mutex->owners, 0
  persist exact mutex->owners
  lvl = load mutex->level
  nl = load lk->new_level
  c = lvl > nl
  br c, raise_level, done
raise_level:
  store lk->new_level, 2
  persist exact lk->new_level
  br done
done:
  store lk->state, 3
  persist exact lk->state
  ret
}

func nvm_release(lk: ptr nvm_lkrec) {
entry:
  store lk->owner, 0
  persist exact lk->owner
  ret
}

func nvm_locks_driver_all() {
entry:
  m = alloc pmem nvm_amutex
  call nvm_lock(m)
  lk = alloc pmem nvm_lkrec
  call nvm_release(lk)
  ret
}
|};
    expectations =
      [
        exp ~rule:w ~file:"nvm_locks.c" ~line:932 ~is_new:true ~years:5.3
          ~kind:Deepmc.Report.Lib "Missing flush (Fig. 9 nvm_lock)";
        exp ~rule:dt ~file:"nvm_locks.c" ~line:905 ~is_new:true ~years:5.3
          ~kind:Deepmc.Report.Lib
          "Durable transaction without persistent writes";
        exp ~rule:fu ~file:"nvm_locks.c" ~line:1411 ~is_new:true ~years:5.3
          ~kind:Deepmc.Report.Lib "Flushing unmodified fields of an object";
        exp ~rule:fu ~file:"nvm_locks.c" ~line:910 ~validated:false
          ~kind:Deepmc.Report.Lib
          "Benign: the upgrade shim persists the whole record after a \
           single-field update (shim write now visible to the offset \
           lattice)";
      ];
  }

let programs = [ nvm_region; nvm_heap; nvm_locks ]
