(* Synthetic NVM-program generator.

   Produces well-formed, executable IR programs of a requested size with
   correct strict-persistency discipline (every persistent write is
   persisted, transactions log what they touch). Used by

   - the Table 9 benchmark, where generated programs sized like the
     paper's applications (Memcached / Redis / NStore) are pushed
     through the full static pipeline versus the parse+CFG baseline;
   - the property-based tests, as a source of arbitrary valid programs;
   - the scalability ablation.

   A deterministic LCG keeps generation reproducible. When
   [buggy_fraction_pct] is non-zero, that fraction of worker functions
   carries a seeded defect (a dropped persist, an unlogged transactional
   write, or a redundant persist), and [generate] reports how many
   defects were seeded so detection recall can be measured. *)

type rng = { mutable s : int }

let rng seed = { s = (seed land 0x3FFFFFFF) lor 1 }

let next r bound =
  r.s <- ((r.s * 1103515245) + 12345) land 0x3FFFFFFF;
  r.s mod bound

type config = {
  seed : int;
  nstructs : int;
  nfuncs : int;
  calls_per_func : int;
  buggy_fraction_pct : int; (* 0..100 *)
  ptr_arith : bool;
}

let default_config =
  {
    seed = 7;
    nstructs = 4;
    nfuncs = 20;
    calls_per_func = 2;
    buggy_fraction_pct = 0;
    ptr_arith = false;
  }

let struct_name i = Fmt.str "s%d" i
let field_name i = Fmt.str "f%d" i
let func_name i = Fmt.str "work%d" i
let nfields = 3

(* All structs share field names and layout, so any object can be passed
   to any worker; this keeps the generator simple without making the
   programs ill-typed for the interpreter. *)
let generate (cfg : config) : Nvmir.Prog.t * int =
  let r = rng cfg.seed in
  let prog = Nvmir.Prog.create () in
  for s = 0 to cfg.nstructs - 1 do
    Nvmir.Builder.struct_ prog (struct_name s)
      (List.init nfields (fun j -> (field_name j, Nvmir.Ty.Int)))
  done;
  let seeded = ref 0 in
  for idx = 0 to cfg.nfuncs - 1 do
    let sname = struct_name (next r cfg.nstructs) in
    let file = Fmt.str "synth_%d.c" (idx mod 7) in
    let buggy = next r 100 < cfg.buggy_fraction_pct in
    if buggy then incr seeded;
    let shape = next r (if cfg.ptr_arith then 4 else 3) in
    let f_hot = field_name (next r nfields) in
    (* callees come from the first few workers — the "library helper"
       tier — keeping call chains shallow like real applications *)
    let callees =
      List.init cfg.calls_per_func (fun _ ->
          if idx = 0 then None
          else Some (func_name (next r (min idx 12))))
    in
    let line n = (idx * 40) + n in
    let _ =
      Nvmir.Builder.func prog ~file (func_name idx)
        [ ("obj", Nvmir.Ty.Ptr (Nvmir.Ty.Named sname)) ]
        (fun fb ->
          let open Nvmir.Builder in
          (match shape with
          | 0 ->
            store fb ~line:(line 1) (fld "obj" f_hot) (i 42);
            if buggy then comment fb "seeded bug: missing persist"
            else persist fb ~line:(line 2) (fld "obj" f_hot)
          | 3 ->
            (* pointer-arithmetic writer: the store and its persist both
               go through a computed alias [q = obj + k], exercising the
               offset-polynomial lattice end to end. The seeded bug
               persists through a *different* offset, so only an
               offset-sensitive analysis can tell the flush misses the
               dirty slot. *)
            let k = next r nfields in
            binop fb "q" Nvmir.Instr.Add (v "obj") (i k);
            store fb ~line:(line 1) (vr "q") (i 11);
            if buggy then begin
              binop fb "q2" Nvmir.Instr.Add (v "obj")
                (i ((k + 1) mod nfields));
              persist fb ~line:(line 2) (vr "q2")
            end
            else persist fb ~line:(line 2) (vr "q")
          | 1 ->
            tx_begin fb ~line:(line 1) ();
            tx_add fb ~line:(line 2) ~extent:Nvmir.Instr.Exact
              (fld "obj" (field_name 0));
            store fb ~line:(line 3) (fld "obj" (field_name 0)) (i 1);
            if buggy then
              (* seeded bug: second field modified without logging *)
              store fb ~line:(line 4) (fld "obj" (field_name 1)) (i 2)
            else begin
              tx_add fb ~line:(line 4) ~extent:Nvmir.Instr.Exact
                (fld "obj" (field_name 1));
              store fb ~line:(line 5) (fld "obj" (field_name 1)) (i 2)
            end;
            tx_end fb ~line:(line 6) ()
          | _ ->
            load fb "t" (fld "obj" f_hot);
            binop fb "c" Nvmir.Instr.Eq (v "t") (i 0);
            cond_br fb (v "c") "upd" "fin";
            label fb "upd";
            store fb ~line:(line 1) (fld "obj" f_hot) (i 5);
            persist fb ~line:(line 2) (fld "obj" f_hot);
            if buggy then
              (* seeded bug: redundant persist of unmodified data *)
              persist fb ~line:(line 3) (fld "obj" f_hot);
            br fb "fin";
            label fb "fin");
          List.iteri
            (fun c callee ->
              match callee with
              | None -> ()
              | Some callee ->
                let arg = Fmt.str "a%d" c in
                palloc fb arg (Nvmir.Ty.Named (struct_name 0));
                call fb callee [ v arg ])
            callees;
          ret fb ())
    in
    ()
  done;
  (* drivers: each worker gets its own root so traces stay bounded *)
  for idx = 0 to cfg.nfuncs - 1 do
    let sname =
      match Nvmir.Prog.find_func prog (func_name idx) with
      | Some { Nvmir.Func.params = (_, Nvmir.Ty.Ptr (Nvmir.Ty.Named s)) :: _; _ }
        -> s
      | Some _ | None -> struct_name 0
    in
    (* [idx] would be shadowed by Builder's index helper after [open],
       so capture the worker name first *)
    let worker = func_name idx in
    let _ =
      Nvmir.Builder.func prog ~file:"synth_driver.c" (Fmt.str "driver%d" idx)
        [] (fun fb ->
          let open Nvmir.Builder in
          palloc fb "obj" (Nvmir.Ty.Named sname);
          call fb worker [ v "obj" ];
          ret fb ())
    in
    ()
  done;
  let drivers = List.init cfg.nfuncs (fun i -> Fmt.str "driver%d" i) in
  let _ =
    Nvmir.Builder.func prog ~file:"synth_driver.c" "main" [] (fun fb ->
        List.iter (fun d -> Nvmir.Builder.call fb d []) drivers;
        Nvmir.Builder.ret fb ())
  in
  (prog, !seeded)

(* Roots for static analysis: the per-worker drivers. *)
let roots cfg = List.init cfg.nfuncs (fun i -> Fmt.str "driver%d" i)
