(* PMDK corpus (strict persistency): the example programs and library
   slices of Tables 3 and 8 — btree_map, rbtree_map, pminvaders,
   hashmap, hashmap_atomic, obj_pmemlog and obj_pmemlog_simple — with
   the studied and newly-detected bugs at the paper's line numbers.

   Each program has one driver per buggy function so the analysis roots
   stay independent (the paper analyzes each example program
   separately). *)

open Types

let w = Analysis.Warning.Unflushed_write
let mb = Analysis.Warning.Missing_persist_barrier
let sm = Analysis.Warning.Semantic_mismatch
let mf = Analysis.Warning.Multiple_flushes
let fu = Analysis.Warning.Flush_unmodified
let ps = Analysis.Warning.Persist_same_object_in_tx
let dt = Analysis.Warning.Durable_tx_no_writes

(* ------------------------------------------------------------------ *)
(* btree_map: Figure 2 (unflushed write in a transaction), plus the new
   flushing-unmodified-fields bugs of Table 8, plus the symbolic-index
   false positive of §5.4. *)

let btree_map =
  {
    name = "btree_map";
    roots = [ "btree_driver_split"; "btree_driver_insert"; "btree_driver_rotate"; "btree_driver_clear" ];
    framework = Pmdk;
    description =
      "B-tree map example: node split modifies an item without logging \
       it (Fig. 2); insert/rotate persist whole nodes after single-field \
       updates";
    entry = "btree_driver_all";
    entry_args = [];
    source =
      {|
struct tree_map_node { n: int, items: int[8], slots: int[8] }

# Figure 2: executed inside a transaction; [node] is never TX_ADDed, so
# the item update at line 201 is unlogged and not durable.
func btree_map_create_split_node(node: ptr tree_map_node, m: ptr tree_map_node) {
entry:
  tx_add exact m->n              @ btree_map.c:195
  c = load node->n
  cm1 = c - 1
  store node->items[cm1], 0      @ btree_map.c:201
  store m->n, 5                  @ btree_map.c:203
  ret
}

# New bug (Table 8): the whole node is persisted although only one of
# its three fields was modified.
func btree_map_insert_item(node: ptr tree_map_node) {
entry:
  store node->n, 7               @ btree_map.c:360
  persist object node            @ btree_map.c:365
  ret
}

func btree_map_rotate(node: ptr tree_map_node) {
entry:
  store node->n, 9               @ btree_map.c:460
  persist object node            @ btree_map.c:465
  ret
}

# False positive (Section 5.4): d equals c at runtime, so the flush at
# 217 covers the write at 215, but symbolic-index disambiguation cannot
# prove it.
func btree_map_clear_item(node: ptr tree_map_node, c: int) {
entry:
  d = c + 0
  store node->items[c], 0        @ btree_map.c:215
  persist exact node->items[d]   @ btree_map.c:217
  ret
}

func btree_driver_split() {
entry:
  node = alloc pmem tree_map_node
  m = alloc pmem tree_map_node
  store node->n, 4               @ btree_driver.c:10
  persist exact node->n          @ btree_driver.c:11
  tx_begin                       @ btree_driver.c:12
  call btree_map_create_split_node(node, m)
  tx_end                         @ btree_driver.c:14
  ret
}

func btree_driver_insert() {
entry:
  node = alloc pmem tree_map_node
  call btree_map_insert_item(node)
  ret
}

func btree_driver_rotate() {
entry:
  node = alloc pmem tree_map_node
  call btree_map_rotate(node)
  ret
}

func btree_driver_clear() {
entry:
  node = alloc pmem tree_map_node
  call btree_map_clear_item(node, 2)
  ret
}

func btree_driver_all() {
entry:
  call btree_driver_split()
  call btree_driver_insert()
  call btree_driver_rotate()
  call btree_driver_clear()
  ret
}
|};
    fixed_source =
      Some
        {|
struct tree_map_node { n: int, items: int[8], slots: int[8] }

func btree_map_create_split_node(node: ptr tree_map_node, m: ptr tree_map_node) {
entry:
  tx_add exact m->n
  c = load node->n
  cm1 = c - 1
  tx_add exact node->items[cm1]
  store node->items[cm1], 0
  store m->n, 5
  ret
}

func btree_map_insert_item(node: ptr tree_map_node) {
entry:
  store node->n, 7
  persist exact node->n
  ret
}

func btree_map_rotate(node: ptr tree_map_node) {
entry:
  store node->n, 9
  persist exact node->n
  ret
}

func btree_map_clear_item(node: ptr tree_map_node, c: int) {
entry:
  store node->items[c], 0
  persist exact node->items[c]
  ret
}

func btree_driver_all() {
entry:
  node = alloc pmem tree_map_node
  m = alloc pmem tree_map_node
  store node->n, 4
  persist exact node->n
  tx_begin
  call btree_map_create_split_node(node, m)
  tx_end
  n2 = alloc pmem tree_map_node
  call btree_map_insert_item(n2)
  n3 = alloc pmem tree_map_node
  call btree_map_rotate(n3)
  n4 = alloc pmem tree_map_node
  call btree_map_clear_item(n4, 2)
  ret
}
|};
    expectations =
      [
        exp ~rule:w ~file:"btree_map.c" ~line:201
          "Modify tree node without making it durable (unlogged write in \
           transaction)";
        exp ~rule:w ~file:"btree_map.c" ~line:215 ~validated:false
          "Benign: flushed through an equal symbolic index the static \
           analysis cannot resolve";
        exp ~rule:fu ~file:"btree_map.c" ~line:365 ~is_new:true ~years:4.4
          "Flushing unmodified fields of tree node";
        exp ~rule:fu ~file:"btree_map.c" ~line:465 ~is_new:true ~years:4.4
          "Flushing unmodified fields of tree node";
      ];
  }

(* ------------------------------------------------------------------ *)
(* rbtree_map *)

let rbtree_map =
  {
    name = "rbtree_map";
    roots = [ "rbtree_driver_insert"; "rbtree_driver_recolor"; "rbtree_driver_rotate"; "rbtree_driver_darken"; "rbtree_driver_update" ];
    framework = Pmdk;
    description =
      "Red-black tree map example: missing barrier before a transaction, \
       double logging, redundant flushes, whole-node persists";
    entry = "rbtree_driver_all";
    entry_args = [];
    source =
      {|
struct rb_node { color: int, parent: int, left: int }

# Studied bug: the flushed recoloring is not fenced before the next
# transaction begins.
func rbtree_map_insert(node: ptr rb_node) {
entry:
  store node->color, 1           @ rbtree_map.c:375
  flush exact node->color        @ rbtree_map.c:379
  tx_begin                       @ rbtree_map.c:383
  tx_add exact node->parent      @ rbtree_map.c:384
  store node->parent, 2          @ rbtree_map.c:385
  tx_end                         @ rbtree_map.c:386
  ret
}

# Studied bug: the node is logged into the transaction twice.
func rbtree_map_recolor(x: ptr rb_node) {
entry:
  tx_begin                       @ rbtree_map.c:193
  tx_add exact x->color          @ rbtree_map.c:195
  store x->color, 1              @ rbtree_map.c:196
  tx_add exact x->color          @ rbtree_map.c:197
  store x->color, 0              @ rbtree_map.c:198
  tx_end                         @ rbtree_map.c:199
  ret
}

# Studied bug: the parent pointer is persisted twice with no
# modification in between.
func rbtree_map_rotate_right(y: ptr rb_node) {
entry:
  store y->parent, 3             @ rbtree_map.c:228
  persist exact y->parent        @ rbtree_map.c:229
  persist exact y->parent        @ rbtree_map.c:231
  ret
}

# New bug (Table 8): whole node flushed after a single-field update.
func rbtree_map_darken(z: ptr rb_node) {
entry:
  store z->color, 1              @ rbtree_map.c:257
  persist object z               @ rbtree_map.c:259
  ret
}

# Resolved false positive (Section 5.4): q = v + 0 aliases v under the
# offset lattice, so the second persist is seen to cover the q-write —
# no warning any more.
func rbtree_map_update(v: ptr rb_node) {
entry:
  store v->color, 1              @ rbtree_map.c:237
  persist exact v->color         @ rbtree_map.c:238
  q = v + 0
  store q->color, 2              @ rbtree_map.c:239
  persist exact v->color         @ rbtree_map.c:240
  ret
}

func rbtree_driver_insert() {
entry:
  n = alloc pmem rb_node
  call rbtree_map_insert(n)
  ret
}

func rbtree_driver_recolor() {
entry:
  n = alloc pmem rb_node
  call rbtree_map_recolor(n)
  ret
}

func rbtree_driver_rotate() {
entry:
  n = alloc pmem rb_node
  call rbtree_map_rotate_right(n)
  ret
}

func rbtree_driver_darken() {
entry:
  n = alloc pmem rb_node
  call rbtree_map_darken(n)
  ret
}

func rbtree_driver_update() {
entry:
  n = alloc pmem rb_node
  call rbtree_map_update(n)
  ret
}

func rbtree_driver_all() {
entry:
  call rbtree_driver_insert()
  call rbtree_driver_recolor()
  call rbtree_driver_rotate()
  call rbtree_driver_darken()
  call rbtree_driver_update()
  ret
}
|};
    fixed_source =
      Some
        {|
struct rb_node { color: int, parent: int, left: int }

func rbtree_map_insert(node: ptr rb_node) {
entry:
  store node->color, 1
  flush exact node->color
  fence
  tx_begin
  tx_add exact node->parent
  store node->parent, 2
  tx_end
  ret
}

func rbtree_map_recolor(x: ptr rb_node) {
entry:
  tx_begin
  tx_add exact x->color
  store x->color, 1
  store x->color, 0
  tx_end
  ret
}

func rbtree_map_rotate_right(y: ptr rb_node) {
entry:
  store y->parent, 3
  persist exact y->parent
  ret
}

func rbtree_map_darken(z: ptr rb_node) {
entry:
  store z->color, 1
  persist exact z->color
  ret
}

func rbtree_map_update(v: ptr rb_node) {
entry:
  store v->color, 1
  persist exact v->color
  q = v + 0
  store q->color, 2
  persist exact v->color
  ret
}

func rbtree_driver_all() {
entry:
  a = alloc pmem rb_node
  call rbtree_map_insert(a)
  b = alloc pmem rb_node
  call rbtree_map_recolor(b)
  c = alloc pmem rb_node
  call rbtree_map_rotate_right(c)
  d = alloc pmem rb_node
  call rbtree_map_darken(d)
  e = alloc pmem rb_node
  call rbtree_map_update(e)
  ret
}
|};
    expectations =
      [
        exp ~rule:mb ~file:"rbtree_map.c" ~line:379
          "Modified object not made durable before the next transaction \
           (missing persist barrier)";
        exp ~rule:ps ~file:"rbtree_map.c" ~line:197
          "Log unmodified fields of a tree node (node logged twice in one \
           transaction)";
        exp ~rule:mf ~file:"rbtree_map.c" ~line:231
          "Redundant flush of the parent pointer";
        exp ~rule:fu ~file:"rbtree_map.c" ~line:259 ~is_new:true ~years:4.4
          "Flushing unmodified fields of tree node";
        (* rbtree_map.c:240 used to carry a benign mf warning here: the
           offset lattice now proves q = v + 0 aliases v, so the second
           persist is recognized as covering the q-write. *)
      ];
  }

(* ------------------------------------------------------------------ *)
(* pminvaders: Figure 7 (durable transaction without persistent writes)
   and redundant flushes. *)

let pminvaders_proc name file lines struct_name =
  let l1, l2, l3, lp = lines in
  Fmt.str
    {|
func %s(it: ptr %s) {
entry:
  t = load it->timer
  c = t == 0
  br c, update, skip
update:
  store it->timer, 100           @@ %s:%d
  store it->y, 1                 @@ %s:%d
  store it->x, 2                 @@ %s:%d
  br skip
skip:
  persist object it              @@ %s:%d
  ret
}
|}
    name struct_name file l1 file l2 file l3 file lp

let pminvaders =
  let f = "pminvaders.c" in
  {
    name = "pminvaders";
    roots = [ "pminvaders_driver_aliens"; "pminvaders_driver_bullets"; "pminvaders_driver_player"; "pminvaders_driver_stars"; "pminvaders_driver_frame"; "pminvaders_driver_draw"; "pminvaders_driver_score" ];
    framework = Pmdk;
    description =
      "PM-Invaders game example: objects persisted on paths where nothing \
       was modified (Fig. 7) and sprites flushed twice per frame";
    entry = "pminvaders_driver_all";
    entry_args = [];
    source =
      String.concat ""
        [
          "\nstruct alien { timer: int, y: int, x: int }\n";
          pminvaders_proc "process_aliens" f (252, 253, 254, 256) "alien";
          pminvaders_proc "process_bullets" f (297, 298, 299, 301) "alien";
          pminvaders_proc "process_player" f (245, 246, 247, 249) "alien";
          pminvaders_proc "update_stars" f (262, 263, 264, 266) "alien";
          pminvaders_proc "draw_frame" f (347, 348, 349, 351) "alien";
          {|
func draw_alien(a: ptr alien) {
entry:
  store a->x, 5                  @ pminvaders.c:140
  persist exact a->x             @ pminvaders.c:141
  persist exact a->x             @ pminvaders.c:143
  ret
}

func update_score(s: ptr alien) {
entry:
  store s->y, 1                  @ pminvaders.c:244
  persist exact s->y             @ pminvaders.c:245
  persist exact s->y             @ pminvaders.c:246
  ret
}

func pminvaders_driver_aliens() {
entry:
  a = alloc pmem alien
  call process_aliens(a)
  ret
}

func pminvaders_driver_bullets() {
entry:
  a = alloc pmem alien
  call process_bullets(a)
  ret
}

func pminvaders_driver_player() {
entry:
  a = alloc pmem alien
  call process_player(a)
  ret
}

func pminvaders_driver_stars() {
entry:
  a = alloc pmem alien
  call update_stars(a)
  ret
}

func pminvaders_driver_frame() {
entry:
  a = alloc pmem alien
  call draw_frame(a)
  ret
}

func pminvaders_driver_draw() {
entry:
  a = alloc pmem alien
  call draw_alien(a)
  ret
}

func pminvaders_driver_score() {
entry:
  a = alloc pmem alien
  call update_score(a)
  ret
}

func pminvaders_driver_all() {
entry:
  call pminvaders_driver_aliens()
  call pminvaders_driver_bullets()
  call pminvaders_driver_player()
  call pminvaders_driver_stars()
  call pminvaders_driver_frame()
  call pminvaders_driver_draw()
  call pminvaders_driver_score()
  ret
}
|};
        ];
    fixed_source =
      Some
        {|
struct alien { timer: int, y: int, x: int }

func process_aliens(it: ptr alien) {
entry:
  t = load it->timer
  c = t == 0
  br c, update, skip
update:
  store it->timer, 100
  store it->y, 1
  store it->x, 2
  persist object it
  br skip
skip:
  ret
}

func draw_alien(a: ptr alien) {
entry:
  store a->x, 5
  persist exact a->x
  ret
}

func update_score(s: ptr alien) {
entry:
  store s->y, 1
  persist exact s->y
  ret
}

func pminvaders_driver_all() {
entry:
  a = alloc pmem alien
  call process_aliens(a)
  b = alloc pmem alien
  call draw_alien(b)
  c = alloc pmem alien
  call update_score(c)
  ret
}
|};
    expectations =
      [
        exp ~rule:dt ~file:f ~line:256
          "Durable transaction without persistent writes (Fig. 7)";
        exp ~rule:dt ~file:f ~line:301
          "Durable transaction without persistent writes";
        exp ~rule:dt ~file:f ~line:249 ~is_new:true ~years:4.4
          "Durable transaction without persistent writes";
        exp ~rule:dt ~file:f ~line:266 ~is_new:true ~years:4.4
          "Durable transaction without persistent writes";
        exp ~rule:dt ~file:f ~line:351 ~is_new:true ~years:4.4
          "Durable transaction without persistent writes";
        exp ~rule:mf ~file:f ~line:143 "Flush unmodified fields of an object \
                                        (sprite flushed twice)";
        exp ~rule:mf ~file:f ~line:246 "Flush unmodified fields of an object \
                                        (score flushed twice)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* hashmap (Figure 1): semantic gap — the bucket array and the bucket
   count are persisted in separate persist units although the program
   expects the initialization to be atomic. *)

let hashmap =
  {
    name = "hashmap";
    roots = [ "hashmap_driver_create"; "hashmap_driver_rebuild" ];
    framework = Pmdk;
    description =
      "Hashmap example of Fig. 1: nbuckets and the bucket array persist \
       in separate units; a crash between them leaves the map \
       inconsistent";
    entry = "hashmap_driver_all";
    entry_args = [];
    source =
      {|
struct hashmap { nbuckets: int, buckets: int[16], seed: int }

func hashmap_create(h: ptr hashmap) {
entry:
  store h->buckets[0], 0         @ hash_map.c:116
  persist exact h->buckets[0]    @ hash_map.c:117
  store h->nbuckets, 16          @ hash_map.c:120
  persist exact h->nbuckets      @ hash_map.c:121
  ret
}

func hashmap_rebuild(h: ptr hashmap) {
entry:
  store h->buckets[1], 0         @ hash_map.c:262
  persist exact h->buckets[1]    @ hash_map.c:263
  store h->nbuckets, 32          @ hash_map.c:264
  persist exact h->nbuckets      @ hash_map.c:265
  ret
}

func hashmap_driver_create() {
entry:
  h = alloc pmem hashmap
  call hashmap_create(h)
  ret
}

func hashmap_driver_rebuild() {
entry:
  h = alloc pmem hashmap
  call hashmap_rebuild(h)
  ret
}

func hashmap_driver_all() {
entry:
  call hashmap_driver_create()
  call hashmap_driver_rebuild()
  ret
}
|};
    fixed_source =
      Some
        {|
struct hashmap { nbuckets: int, buckets: int[16], seed: int }

func hashmap_create(h: ptr hashmap) {
entry:
  tx_begin
  tx_add exact h->buckets[0]
  tx_add exact h->nbuckets
  store h->buckets[0], 1
  store h->nbuckets, 16
  tx_end
  ret
}

func hashmap_driver_all() {
entry:
  h = alloc pmem hashmap
  call hashmap_create(h)
  ret
}
|};
    expectations =
      [
        exp ~rule:sm ~file:"hash_map.c" ~line:120
          "Multiple epochs writing to different fields of an object \
           (Fig. 1 semantic gap)";
        exp ~rule:sm ~file:"hash_map.c" ~line:264
          "Multiple epochs writing to different fields of an object";
      ];
  }

(* ------------------------------------------------------------------ *)
(* hashmap_atomic: four new semantic-mismatch bugs plus one benign
   counter-update pattern the conservative rule also flags. *)

let hm_atomic_fn name file (l1, l2, l3, l4) fld1 fld2 =
  Fmt.str
    {|
func %s(h: ptr hm_atomic) {
entry:
  store h->%s, 1                 @@ %s:%d
  persist exact h->%s            @@ %s:%d
  store h->%s, 2                 @@ %s:%d
  persist exact h->%s            @@ %s:%d
  ret
}
|}
    name fld1 file l1 fld1 file l2 fld2 file l3 fld2 file l4

let hashmap_atomic =
  let f = "hashmap_atomic.c" in
  {
    name = "hashmap_atomic";
    roots = [ "hm_atomic_driver_create"; "hm_atomic_driver_rebuild"; "hm_atomic_driver_insert"; "hm_atomic_driver_remove"; "hm_atomic_driver_stats" ];
    framework = Pmdk;
    description =
      "Atomic hashmap example: logically-atomic multi-field updates \
       split across persist units";
    entry = "hm_atomic_driver_all";
    entry_args = [];
    source =
      String.concat ""
        [
          "\n\
           struct hm_atomic { nbuckets: int, count: int, seed: int, hits: \
           int, misses: int }\n";
          hm_atomic_fn "hm_atomic_create" f (118, 119, 120, 121) "count"
            "nbuckets";
          hm_atomic_fn "hm_atomic_rebuild" f (262, 263, 264, 265) "count"
            "nbuckets";
          hm_atomic_fn "hm_atomic_insert" f (283, 284, 285, 286) "nbuckets"
            "count";
          hm_atomic_fn "hm_atomic_remove" f (494, 495, 496, 497) "nbuckets"
            "count";
          (* benign: independent statistics counters *)
          hm_atomic_fn "hm_atomic_stats" f (298, 299, 300, 301) "hits"
            "misses";
          {|
func hm_atomic_driver_create() {
entry:
  h = alloc pmem hm_atomic
  call hm_atomic_create(h)
  ret
}

func hm_atomic_driver_rebuild() {
entry:
  h = alloc pmem hm_atomic
  call hm_atomic_rebuild(h)
  ret
}

func hm_atomic_driver_insert() {
entry:
  h = alloc pmem hm_atomic
  call hm_atomic_insert(h)
  ret
}

func hm_atomic_driver_remove() {
entry:
  h = alloc pmem hm_atomic
  call hm_atomic_remove(h)
  ret
}

func hm_atomic_driver_stats() {
entry:
  h = alloc pmem hm_atomic
  call hm_atomic_stats(h)
  ret
}

func hm_atomic_driver_all() {
entry:
  call hm_atomic_driver_create()
  call hm_atomic_driver_rebuild()
  call hm_atomic_driver_insert()
  call hm_atomic_driver_remove()
  call hm_atomic_driver_stats()
  ret
}
|};
        ];
    fixed_source =
      Some
        {|
struct hm_atomic { nbuckets: int, count: int, seed: int, hits: int, misses: int }

# The fix the paper implies for the semantic gap: make the logically-
# atomic multi-field update actually atomic with a transaction.
func hm_atomic_create(h: ptr hm_atomic) {
entry:
  tx_begin
  tx_add exact h->count
  tx_add exact h->nbuckets
  store h->count, 1
  store h->nbuckets, 2
  tx_end
  ret
}

func hm_atomic_stats(h: ptr hm_atomic) {
entry:
  store h->hits, 1
  persist exact h->hits
  store h->misses, 2
  persist exact h->misses
  ret
}

func hm_atomic_driver_all() {
entry:
  h = alloc pmem hm_atomic
  call hm_atomic_create(h)
  h2 = alloc pmem hm_atomic
  call hm_atomic_stats(h2)
  ret
}
|};
    expectations =
      [
        exp ~rule:sm ~file:f ~line:120 ~is_new:true ~years:4.4
          "Multiple epochs write to different fields of an object";
        exp ~rule:sm ~file:f ~line:264 ~is_new:true ~years:4.4
          "Multiple epochs write to different fields of an object";
        exp ~rule:sm ~file:f ~line:285 ~is_new:true ~years:4.4
          "Multiple epochs write to different fields of an object";
        exp ~rule:sm ~file:f ~line:496 ~is_new:true ~years:4.4
          "Multiple epochs write to different fields of an object";
        exp ~rule:sm ~file:f ~line:300 ~validated:false
          "Benign: hits/misses statistics counters are semantically \
           independent";
      ];
  }

(* ------------------------------------------------------------------ *)
(* obj_pmemlog: missing persist barrier between a flush and the next
   transaction (library code). *)

let obj_pmemlog =
  {
    name = "obj_pmemlog";
    roots = [ "pmemlog_driver" ];
    framework = Pmdk;
    description =
      "pmemlog example (library slice): header flush not fenced before \
       the append transaction begins";
    entry = "pmemlog_driver";
    entry_args = [];
    source =
      {|
struct plog { len: int, tail: int }

func pmemlog_append(log: ptr plog) {
entry:
  store log->len, 8              @ obj_pmemlog.c:89
  flush exact log->len           @ obj_pmemlog.c:91
  tx_begin                       @ obj_pmemlog.c:93
  tx_add exact log->tail         @ obj_pmemlog.c:94
  store log->tail, 1             @ obj_pmemlog.c:95
  tx_end                         @ obj_pmemlog.c:97
  ret
}

func pmemlog_driver() {
entry:
  log = alloc pmem plog
  call pmemlog_append(log)
  ret
}
|};
    fixed_source =
      Some
        {|
struct plog { len: int, tail: int }

func pmemlog_append(log: ptr plog) {
entry:
  store log->len, 8
  flush exact log->len
  fence
  tx_begin
  tx_add exact log->tail
  store log->tail, 1
  tx_end
  ret
}

func pmemlog_driver() {
entry:
  log = alloc pmem plog
  call pmemlog_append(log)
  ret
}
|};
    expectations =
      [
        exp ~rule:mb ~file:"obj_pmemlog.c" ~line:91 ~kind:Deepmc.Report.Lib
          "Header flush not followed by a persist barrier before the next \
           transaction";
      ];
  }

(* ------------------------------------------------------------------ *)
(* obj_pmemlog_simple: the same object logged twice within one
   transaction (new bugs). *)

let obj_pmemlog_simple =
  let f = "obj_pmemlog_simple.c" in
  {
    name = "obj_pmemlog_simple";
    roots = [ "pmemlog_simple_driver_append"; "pmemlog_simple_driver_truncate" ];
    framework = Pmdk;
    description =
      "simple pmemlog variant: log header registered in the undo log \
       twice per transaction";
    entry = "pmemlog_simple_driver_all";
    entry_args = [];
    source =
      {|
struct plog_s { len: int, tail: int }

func pmemlog_simple_append(log: ptr plog_s) {
entry:
  tx_begin                       @ obj_pmemlog_simple.c:203
  tx_add exact log->len          @ obj_pmemlog_simple.c:205
  store log->len, 4              @ obj_pmemlog_simple.c:206
  tx_add exact log->len          @ obj_pmemlog_simple.c:207
  store log->len, 5              @ obj_pmemlog_simple.c:208
  tx_end                         @ obj_pmemlog_simple.c:210
  ret
}

func pmemlog_simple_truncate(log: ptr plog_s) {
entry:
  tx_begin                       @ obj_pmemlog_simple.c:248
  tx_add exact log->tail         @ obj_pmemlog_simple.c:250
  store log->tail, 0             @ obj_pmemlog_simple.c:251
  tx_add exact log->tail         @ obj_pmemlog_simple.c:252
  store log->tail, 1             @ obj_pmemlog_simple.c:253
  tx_end                         @ obj_pmemlog_simple.c:255
  ret
}

func pmemlog_simple_driver_append() {
entry:
  log = alloc pmem plog_s
  call pmemlog_simple_append(log)
  ret
}

func pmemlog_simple_driver_truncate() {
entry:
  log = alloc pmem plog_s
  call pmemlog_simple_truncate(log)
  ret
}

func pmemlog_simple_driver_all() {
entry:
  call pmemlog_simple_driver_append()
  call pmemlog_simple_driver_truncate()
  ret
}
|};
    fixed_source =
      Some
        {|
struct plog_s { len: int, tail: int }

func pmemlog_simple_append(log: ptr plog_s) {
entry:
  tx_begin
  tx_add exact log->len
  store log->len, 4
  store log->len, 5
  tx_end
  ret
}

func pmemlog_simple_truncate(log: ptr plog_s) {
entry:
  tx_begin
  tx_add exact log->tail
  store log->tail, 0
  store log->tail, 1
  tx_end
  ret
}

func pmemlog_simple_driver_all() {
entry:
  log = alloc pmem plog_s
  call pmemlog_simple_append(log)
  log2 = alloc pmem plog_s
  call pmemlog_simple_truncate(log2)
  ret
}
|};
    expectations =
      [
        exp ~rule:ps ~file:f ~line:207 ~is_new:true ~years:4.4
          ~kind:Deepmc.Report.Lib
          "Multiple epochs write to different fields of an object (header \
           logged twice per transaction)";
        exp ~rule:ps ~file:f ~line:252 ~is_new:true ~years:4.4
          ~kind:Deepmc.Report.Lib
          "Multiple epochs write to different fields of an object (tail \
           logged twice per transaction)";
      ];
  }

let programs =
  [
    btree_map;
    rbtree_map;
    pminvaders;
    hashmap;
    hashmap_atomic;
    obj_pmemlog;
    obj_pmemlog_simple;
  ]
