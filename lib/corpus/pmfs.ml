(* PMFS corpus (epoch persistency): library slices of journal.c,
   symlink.c/namei.c (Figure 4), xip.c, file.c and super.c.

   journal.c additionally demonstrates the static/dynamic split of
   §5.1: the deferred-durability bug at line 632 sits on a path the
   driver does not execute (found statically), while the redundant
   recovery flush at line 650 goes through pointer arithmetic and was
   historically the dynamic checker's catch — the offset lattice now
   resolves the alias, so the static tier reports it too. *)

open Types

let v1 = Analysis.Warning.Multiple_writes_at_once
let v4 = Analysis.Warning.Missing_barrier_nested_tx
let sm = Analysis.Warning.Semantic_mismatch
let mf = Analysis.Warning.Multiple_flushes
let fu = Analysis.Warning.Flush_unmodified

let journal =
  {
    name = "pmfs_journal";
    framework = Pmfs;
    description =
      "Journal commit: the epoch-1 tail update only becomes durable with \
       the epoch-2 commit flush (deferred durability), plus a redundant \
       recovery flush found dynamically";
    entry = "journal_driver_all";
    entry_args = [ 0 ];
    roots = [ "journal_driver_commit"; "journal_driver_defer"; "journal_driver_recover" ];
    source =
      {|
struct journal_t { tail: int, commit: int }

# Studied bug: the tail written in the first epoch is never flushed in
# its own epoch; the commit flush of the second epoch makes both epochs
# durable at once, violating epoch ordering. The buggy path is guarded
# by [flag] (the driver passes 0), so only the static checker sees it.
func journal_commit(j: ptr journal_t, flag: int) {
entry:
  c = flag == 1
  br c, buggy, done
buggy:
  epoch_begin                    @ journal.c:626
  store j->tail, 1               @ journal.c:628
  epoch_end                      @ journal.c:629
  epoch_begin                    @ journal.c:630
  store j->commit, 1             @ journal.c:631
  flush object j                 @ journal.c:632
  fence                          @ journal.c:633
  epoch_end                      @ journal.c:634
  br done
done:
  ret
}

# Section 5.4 site, resolved: q = j + 0 aliases j under the offset
# lattice, so the tail flush at 657 is seen and the commit flush at 660
# no longer looks like deferred durability. The whole-object commit
# flush instead draws two benign performance warnings (flushing the
# unmodified tail, and split updates across consecutive persist units).
func journal_checkpoint(j: ptr journal_t) {
entry:
  epoch_begin                    @ journal.c:654
  store j->tail, 2               @ journal.c:656
  q = j + 0
  flush exact q->tail            @ journal.c:657
  fence                          @ journal.c:658
  epoch_end                      @ journal.c:655
  epoch_begin                    @ journal.c:659
  store j->commit, 2             @ journal.c:661
  flush object j                 @ journal.c:660
  fence                          @ journal.c:662
  epoch_end                      @ journal.c:663
  ret
}

# New bug, found dynamically (and now also statically via the offset
# lattice): recovery flushes the tail again right after the
# pointer-arithmetic flush already wrote it back.
func journal_recover(j: ptr journal_t) {
entry:
  epoch_begin                    @ journal.c:644
  store j->tail, 5               @ journal.c:646
  q = j + 0
  flush exact q->tail            @ journal.c:648
  fence                          @ journal.c:649
  flush exact j->tail            @ journal.c:650
  fence                          @ journal.c:651
  epoch_end                      @ journal.c:652
  ret
}

func journal_driver_commit() {
entry:
  j = alloc pmem journal_t
  call journal_commit(j, 1)
  ret
}

func journal_driver_defer() {
entry:
  j = alloc pmem journal_t
  call journal_checkpoint(j)
  ret
}

func journal_driver_recover() {
entry:
  j = alloc pmem journal_t
  call journal_recover(j)
  ret
}

# Dynamic-analysis entry: [flag] = 0 keeps the statically-found buggy
# commit path unexecuted, like a test workload that never hits it.
func journal_driver_all(flag: int) {
entry:
  j = alloc pmem journal_t
  call journal_commit(j, flag)
  j2 = alloc pmem journal_t
  call journal_checkpoint(j2)
  j3 = alloc pmem journal_t
  call journal_recover(j3)
  ret
}
|};
    fixed_source =
      Some
        {|
struct journal_t { tail: int, commit: int }

func journal_commit(j: ptr journal_t) {
entry:
  epoch_begin
  store j->tail, 1
  flush exact j->tail
  fence
  epoch_end
  epoch_begin
  store j->commit, 1
  flush exact j->commit
  fence
  epoch_end
  ret
}

func journal_recover(j: ptr journal_t) {
entry:
  epoch_begin
  store j->tail, 5
  flush exact j->tail
  fence
  epoch_end
  ret
}

func journal_driver_all() {
entry:
  j = alloc pmem journal_t
  call journal_commit(j)
  j3 = alloc pmem journal_t
  call journal_recover(j3)
  ret
}
|};
    expectations =
      [
        exp ~rule:v1 ~file:"journal.c" ~line:632 ~kind:Deepmc.Report.Lib
          "Flush redundant data when committing: epoch-1 tail made durable \
           together with the epoch-2 commit";
        exp ~rule:fu ~file:"journal.c" ~line:660 ~validated:false
          ~kind:Deepmc.Report.Lib
          "Benign: the whole-object commit flush writes back the tail, \
           which the offset lattice proves was already durable";
        exp ~rule:sm ~file:"journal.c" ~line:661 ~validated:false
          ~kind:Deepmc.Report.Lib
          "Benign: tail and commit are deliberately persisted in separate \
           units (journaling makes the split crash-safe)";
        exp ~rule:mf ~file:"journal.c" ~line:650 ~is_new:true ~years:3.2
          ~kind:Deepmc.Report.Lib ~discovery:Dynamic_analysis
          "Redundant write-back of the journal tail during recovery";
      ];
  }

let symlink =
  {
    name = "pmfs_symlink";
    framework = Pmfs;
    description =
      "Figure 4: pmfs_block_symlink's flushes form an inner transaction \
       that returns to pmfs_symlink without a persist barrier";
    entry = "symlink_driver";
    entry_args = [];
    roots = [ "symlink_driver" ];
    source =
      {|
struct sym_block { data: int, len: int }
struct dentry_t { entries: int, count: int }

# file symlink.c
func pmfs_block_symlink(blockp: ptr sym_block) {
entry:
  tx_begin                       @ symlink.c:30
  store blockp->data, 7          @ symlink.c:35
  flush exact blockp->data       @ symlink.c:37
  tx_end                         @ symlink.c:38
  ret
}

# file namei.c
func pmfs_symlink(dir: ptr dentry_t, blockp: ptr sym_block) {
entry:
  tx_begin                       @ namei.c:510
  call pmfs_block_symlink(blockp)
  store dir->entries, 1          @ namei.c:514
  flush exact dir->entries       @ namei.c:515
  fence                          @ namei.c:516
  tx_end                         @ namei.c:517
  ret
}

func symlink_driver() {
entry:
  dir = alloc pmem dentry_t
  blk = alloc pmem sym_block
  call pmfs_symlink(dir, blk)
  ret
}
|};
    fixed_source =
      Some
        {|
struct sym_block { data: int, len: int }
struct dentry_t { entries: int, count: int }

func pmfs_block_symlink(blockp: ptr sym_block) {
entry:
  tx_begin
  store blockp->data, 7
  flush exact blockp->data
  fence
  tx_end
  ret
}

func pmfs_symlink(dir: ptr dentry_t, blockp: ptr sym_block) {
entry:
  tx_begin
  call pmfs_block_symlink(blockp)
  store dir->entries, 1
  flush exact dir->entries
  fence
  tx_end
  ret
}

func symlink_driver() {
entry:
  dir = alloc pmem dentry_t
  blk = alloc pmem sym_block
  call pmfs_symlink(dir, blk)
  ret
}
|};
    expectations =
      [
        exp ~rule:v4 ~file:"symlink.c" ~line:38 ~kind:Deepmc.Report.Lib
          "Missing persist barrier in the inner transaction (Fig. 4)";
      ];
  }

let xip =
  {
    name = "pmfs_xip";
    framework = Pmfs;
    description =
      "Execute-in-place I/O: the same buffer is flushed twice per \
       request with no intervening modification";
    entry = "xip_driver_all";
    entry_args = [];
    roots = [ "xip_driver_read"; "xip_driver_write" ];
    source =
      {|
struct xip_buf { data: int, len: int }

func pmfs_xip_file_read(buf: ptr xip_buf) {
entry:
  store buf->data, 1             @ xip.c:204
  flush exact buf->data          @ xip.c:205
  fence                          @ xip.c:206
  flush exact buf->data          @ xip.c:207
  fence                          @ xip.c:208
  ret
}

func pmfs_xip_file_write(buf: ptr xip_buf) {
entry:
  store buf->data, 2             @ xip.c:259
  flush exact buf->data          @ xip.c:260
  fence                          @ xip.c:261
  flush exact buf->data          @ xip.c:262
  fence                          @ xip.c:263
  ret
}

func xip_driver_read() {
entry:
  b = alloc pmem xip_buf
  call pmfs_xip_file_read(b)
  ret
}

func xip_driver_write() {
entry:
  b = alloc pmem xip_buf
  call pmfs_xip_file_write(b)
  ret
}

func xip_driver_all() {
entry:
  call xip_driver_read()
  call xip_driver_write()
  ret
}
|};
    fixed_source =
      Some
        {|
struct xip_buf { data: int, len: int }

func pmfs_xip_file_read(buf: ptr xip_buf) {
entry:
  store buf->data, 1
  flush exact buf->data
  fence
  ret
}

func pmfs_xip_file_write(buf: ptr xip_buf) {
entry:
  store buf->data, 2
  flush exact buf->data
  fence
  ret
}

func xip_driver_all() {
entry:
  b = alloc pmem xip_buf
  call pmfs_xip_file_read(b)
  b2 = alloc pmem xip_buf
  call pmfs_xip_file_write(b2)
  ret
}
|};
    expectations =
      [
        exp ~rule:mf ~file:"xip.c" ~line:207 ~kind:Deepmc.Report.Lib
          "Flush the same buffer multiple times";
        exp ~rule:mf ~file:"xip.c" ~line:262 ~kind:Deepmc.Report.Lib
          "Flush the same buffer multiple times";
      ];
  }

let files =
  {
    name = "pmfs_file";
    framework = Pmfs;
    description = "Timestamp update path writes back a field nothing modified";
    entry = "file_driver";
    entry_args = [];
    roots = [ "file_driver" ];
    source =
      {|
struct pmfs_inode { mtime: int, size: int }

func pmfs_update_time(inode: ptr pmfs_inode) {
entry:
  flush exact inode->mtime       @ file.c:232
  fence                          @ file.c:233
  ret
}

func file_driver() {
entry:
  i = alloc pmem pmfs_inode
  call pmfs_update_time(i)
  ret
}
|};
    fixed_source =
      Some
        {|
struct pmfs_inode { mtime: int, size: int }

func pmfs_update_time(inode: ptr pmfs_inode) {
entry:
  store inode->mtime, 42
  flush exact inode->mtime
  fence
  ret
}

func file_driver() {
entry:
  i = alloc pmem pmfs_inode
  call pmfs_update_time(i)
  ret
}
|};
    expectations =
      [
        exp ~rule:fu ~file:"file.c" ~line:232 ~kind:Deepmc.Report.Lib
          "Flush unmodified object";
      ];
  }

let super =
  {
    name = "pmfs_super";
    framework = Pmfs;
    description =
      "Superblock save/recover: unmodified fields written back (new bugs \
       of Table 8), one found only at runtime, plus a benign repair-path \
       flush";
    entry = "super_driver_all";
    entry_args = [];
    roots = [ "super_driver_save"; "super_driver_recover"; "super_driver_repair" ];
    source =
      {|
struct pmfs_super { magic: int, size: int, root: int, pad: int }

# New bugs (Table 8): the save path writes back the magic and size
# fields even when the superblock was not modified.
func pmfs_save_super(sb: ptr pmfs_super) {
entry:
  flush exact sb->magic          @ super.c:542
  flush exact sb->size           @ super.c:543
  fence                          @ super.c:544
  ret
}

# New bug, found dynamically (and now also statically): the recovery
# path flushes the root field through a redundancy helper using pointer
# arithmetic; the offset lattice resolves q = sb + 0, so both tiers see
# the unmodified write-back.
func pmfs_recover_super(sb: ptr pmfs_super) {
entry:
  epoch_begin                    @ super.c:575
  q = sb + 0
  flush exact q->root            @ super.c:579
  fence                          @ super.c:580
  epoch_end                      @ super.c:581
  ret
}

# Resolved false positive (Section 5.4): the repair path modifies the
# magic field through the same kind of pointer arithmetic, and the
# offset lattice now proves q = sb + 0 aliases sb, so the flush at 584
# is recognized as covering the modification — no warning any more.
func pmfs_repair_super(sb: ptr pmfs_super) {
entry:
  q = sb + 0
  store q->magic, 99             @ super.c:582
  flush exact sb->magic          @ super.c:584
  fence                          @ super.c:585
  ret
}

func super_driver_save() {
entry:
  sb = alloc pmem pmfs_super
  call pmfs_save_super(sb)
  ret
}

func super_driver_recover() {
entry:
  sb = alloc pmem pmfs_super
  call pmfs_recover_super(sb)
  ret
}

func super_driver_repair() {
entry:
  sb = alloc pmem pmfs_super
  call pmfs_repair_super(sb)
  ret
}

func super_driver_all() {
entry:
  call super_driver_save()
  call super_driver_recover()
  call super_driver_repair()
  ret
}
|};
    fixed_source =
      Some
        {|
struct pmfs_super { magic: int, size: int, root: int, pad: int }

func pmfs_save_super(sb: ptr pmfs_super) {
entry:
  store sb->magic, 7
  store sb->size, 64
  flush exact sb->magic
  flush exact sb->size
  fence
  ret
}

func super_driver_all() {
entry:
  sb = alloc pmem pmfs_super
  call pmfs_save_super(sb)
  ret
}
|};
    expectations =
      [
        exp ~rule:fu ~file:"super.c" ~line:542 ~is_new:true ~years:3.2
          ~kind:Deepmc.Report.Lib "Flushing unmodified fields of an object";
        exp ~rule:fu ~file:"super.c" ~line:543 ~is_new:true ~years:3.2
          ~kind:Deepmc.Report.Lib "Flushing unmodified fields of an object";
        exp ~rule:fu ~file:"super.c" ~line:579 ~is_new:true ~years:3.2
          ~kind:Deepmc.Report.Lib ~discovery:Dynamic_analysis
          "Flushing unmodified fields of an object (the pointer-arithmetic \
           flush, historically a runtime-only catch)";
        (* super.c:584 used to carry a benign fu warning here: the offset
           lattice now proves the repair path's pointer-arithmetic store
           modifies the flushed field. *)
      ];
  }

let programs = [ journal; symlink; xip; files; super ]
