(** Registry over the whole corpus plus the aggregate queries behind the
    Table 1/2/3/8 benches. *)

open Types

val all : program list
val find : string -> program option
val by_framework : framework -> program list

val analyze :
  ?field_sensitive:bool ->
  ?offset_sensitive:bool ->
  ?run_dynamic:bool ->
  ?config:Analysis.Config.t ->
  program ->
  Deepmc.Driver.report * Deepmc.Report.score
(** Full pipeline on one corpus program, scored against its ground
    truth. *)

type framework_totals = {
  framework : framework;
  validated : int;
  warnings : int;
  per_rule : (Analysis.Warning.rule_id * (int * int)) list;
      (** rule -> validated/warnings *)
}

val table1 :
  ?field_sensitive:bool ->
  ?run_dynamic:bool ->
  ?config:Analysis.Config.t ->
  unit ->
  framework_totals list
(** The cells of Table 1, measured. *)

val studied_bugs :
  unit -> (program * Deepmc.Report.expectation * discovery) list
(** Tables 2 and 3. *)

val new_bugs : unit -> (program * Deepmc.Report.expectation * discovery) list
(** Table 8. *)

val benign_patterns :
  unit -> (program * Deepmc.Report.expectation * discovery) list
(** The expected false positives (§5.4). *)

val is_violation : Deepmc.Report.expectation -> bool
