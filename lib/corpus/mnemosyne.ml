(* Mnemosyne corpus (epoch persistency): phlog_base.c, chhash.c and
   CHash.c. All four Mnemosyne bugs of Table 8 were first found by the
   dynamic checker: the buggy accesses go through Mnemosyne's raw-word
   logging macros, which expand to pointer arithmetic — four of the six
   dynamically-discovered new bugs of §5.1. The offset lattice now
   resolves those aliases, so the static tier reports the same four
   warnings; the discovery metadata records the historical provenance. *)

open Types

let w = Analysis.Warning.Unflushed_write
let mf = Analysis.Warning.Multiple_flushes
let ps = Analysis.Warning.Persist_same_object_in_tx

let phlog_base =
  {
    name = "phlog_base";
    framework = Mnemosyne;
    description =
      "Physical log: the head update of an append is still volatile when \
       its epoch closes";
    entry = "phlog_driver";
    entry_args = [];
    roots = [ "phlog_driver" ];
    source =
      {|
struct phlog { head: int, tail: int }

# The write goes through Mnemosyne's raw-word macro (modeled as pointer
# arithmetic, resolved by the offset lattice); the epoch ends while it
# is still in the cache.
func phlog_append(log: ptr phlog) {
entry:
  epoch_begin                    @ phlog_base.c:128
  q = log + 0
  store q->head, 3               @ phlog_base.c:132
  epoch_end                      @ phlog_base.c:134
  ret
}

func phlog_driver() {
entry:
  log = alloc pmem phlog
  call phlog_append(log)
  ret
}
|};
    fixed_source =
      Some
        {|
struct phlog { head: int, tail: int }

func phlog_append(log: ptr phlog) {
entry:
  epoch_begin
  store log->head, 3
  flush exact log->head
  fence
  epoch_end
  ret
}

func phlog_driver() {
entry:
  log = alloc pmem phlog
  call phlog_append(log)
  ret
}
|};
    expectations =
      [
        exp ~rule:w ~file:"phlog_base.c" ~line:132 ~is_new:true ~years:10.0
          ~kind:Deepmc.Report.Lib ~discovery:Dynamic_analysis
          "Unflushed write (found at runtime: the store goes through \
           Mnemosyne's raw-word macro)";
      ];
  }

let chhash =
  {
    name = "chhash";
    framework = Mnemosyne;
    description =
      "Cuckoo hash table: bucket counters persisted twice per \
       transaction through the logging macros";
    entry = "chhash_driver_all";
    entry_args = [];
    roots = [ "chhash_driver_insert"; "chhash_driver_expand" ];
    source =
      {|
struct chhash_t { size: int, count: int }

func chhash_insert(h: ptr chhash_t) {
entry:
  epoch_begin                    @ chhash.c:176
  tx_begin                       @ chhash.c:178
  tx_add exact h->size           @ chhash.c:179
  store h->size, 5               @ chhash.c:180
  q = h + 0
  store q->count, 1              @ chhash.c:182
  flush exact q->count           @ chhash.c:183
  flush exact q->count           @ chhash.c:185
  fence                          @ chhash.c:186
  tx_end                         @ chhash.c:188
  epoch_end                      @ chhash.c:190
  ret
}

func chhash_expand(h: ptr chhash_t) {
entry:
  epoch_begin                    @ chhash.c:261
  tx_begin                       @ chhash.c:263
  tx_add exact h->size           @ chhash.c:264
  store h->size, 9               @ chhash.c:265
  q = h + 0
  store q->count, 2              @ chhash.c:267
  flush exact q->count           @ chhash.c:268
  flush exact q->count           @ chhash.c:270
  fence                          @ chhash.c:271
  tx_end                         @ chhash.c:273
  epoch_end                      @ chhash.c:275
  ret
}

func chhash_driver_insert() {
entry:
  h = alloc pmem chhash_t
  call chhash_insert(h)
  ret
}

func chhash_driver_expand() {
entry:
  h = alloc pmem chhash_t
  call chhash_expand(h)
  ret
}

func chhash_driver_all() {
entry:
  call chhash_driver_insert()
  call chhash_driver_expand()
  ret
}
|};
    fixed_source =
      Some
        {|
struct chhash_t { size: int, count: int }

func chhash_insert(h: ptr chhash_t) {
entry:
  epoch_begin
  tx_begin
  tx_add exact h->size
  store h->size, 5
  store h->count, 1
  flush exact h->count
  fence
  tx_end
  epoch_end
  ret
}

func chhash_driver_all() {
entry:
  h = alloc pmem chhash_t
  call chhash_insert(h)
  ret
}
|};
    expectations =
      [
        exp ~rule:ps ~file:"chhash.c" ~line:185 ~is_new:true ~years:10.0
          ~kind:Deepmc.Report.Lib ~discovery:Dynamic_analysis
          "Multiple writes to the same object in a transaction (bucket \
           counter persisted twice)";
        exp ~rule:ps ~file:"chhash.c" ~line:270 ~is_new:true ~years:10.0
          ~kind:Deepmc.Report.Lib ~discovery:Dynamic_analysis
          "Multiple writes to the same object in a transaction";
      ];
  }

let chash =
  {
    name = "chash";
    framework = Mnemosyne;
    description =
      "Chained hash table: the capacity field is flushed again after the \
       rehash already wrote it back";
    entry = "chash_driver";
    entry_args = [];
    roots = [ "chash_driver" ];
    source =
      {|
struct chash_tbl { cap: int, buckets: int }

func chash_rehash(tbl: ptr chash_tbl) {
entry:
  epoch_begin                    @ CHash.c:142
  store tbl->cap, 8              @ CHash.c:146
  flush exact tbl->cap           @ CHash.c:147
  fence                          @ CHash.c:148
  q = tbl + 0
  flush exact q->cap             @ CHash.c:150
  fence                          @ CHash.c:151
  epoch_end                      @ CHash.c:153
  ret
}

func chash_driver() {
entry:
  t = alloc pmem chash_tbl
  call chash_rehash(t)
  ret
}
|};
    fixed_source =
      Some
        {|
struct chash_tbl { cap: int, buckets: int }

func chash_rehash(tbl: ptr chash_tbl) {
entry:
  epoch_begin
  store tbl->cap, 8
  flush exact tbl->cap
  fence
  epoch_end
  ret
}

func chash_driver() {
entry:
  t = alloc pmem chash_tbl
  call chash_rehash(t)
  ret
}
|};
    expectations =
      [
        exp ~rule:mf ~file:"CHash.c" ~line:150 ~is_new:true ~years:10.0
          ~kind:Deepmc.Report.Lib ~discovery:Dynamic_analysis
          "Multiple flushes to a persistent object";
      ];
  }

let programs = [ phlog_base; chhash; chash ]
