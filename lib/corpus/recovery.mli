(** Base programs for the recovery tier: a CRC-guarded journal recovery
    (clean) and its unguarded twin (unguarded reads, silent acceptance).
    Kept out of {!Registry.all} — the paper-corpus benches are pinned —
    and consumed by the recovery-recall evaluation. *)

val guarded : Types.program
val unguarded : Types.program
val programs : Types.program list
