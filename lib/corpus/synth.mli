(** Synthetic NVM-program generator: well-formed, executable programs of
    a requested size with correct strict-persistency discipline, and
    optionally a known number of seeded defects. Used by the Table 9
    bench (application-sized programs), the property-based tests, and
    the scalability/recall ablations. Deterministic per seed. *)

type config = {
  seed : int;
  nstructs : int;
  nfuncs : int;
  calls_per_func : int;
  buggy_fraction_pct : int;  (** 0..100: fraction of defective workers *)
  ptr_arith : bool;
      (** admit a fourth worker shape whose store and persist go through
          a computed alias [q = obj + k] (seeded bug: persist at the
          wrong offset), exercising the offset-polynomial lattice.
          Default false, keeping legacy seeds bit-identical *)
}

val default_config : config

val generate : config -> Nvmir.Prog.t * int
(** The program and the number of seeded defects. *)

val roots : config -> string list
(** The per-worker drivers, for static analysis. *)
