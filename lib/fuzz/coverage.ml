(* PM-aware coverage: a cheap fingerprint of what an execution touched,
   persistency-wise. Two bitmaps, hashed splitmix-style:

   - [map]: general features — slots accessed, boundary observations
     (kind x global index x client), epoch-boundary crossings with the
     volatile-slot count at the crossing;
   - [pairs]: WAW/RAW pair identities (producer line x consumer line x
     cross-client bit), kept separate so the energy schedule can favor
     schedules that exposed new inter-thread dependence pairs without
     drowning them in slot-touch noise.

   The fingerprint is a digest of both maps; novelty is counted in bits
   against an accumulated seen-map. Everything is deterministic: same
   execution, same bits. *)

let map_bytes = 512 (* 4096 general-feature bits *)
let pair_bytes = 128 (* 1024 dependence-pair bits *)

type t = { map : Bytes.t; pairs : Bytes.t }

let create () =
  { map = Bytes.make map_bytes '\000'; pairs = Bytes.make pair_bytes '\000' }

(* splitmix64 finalizer over packed feature words *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash3 a b c =
  let z =
    Int64.add
      (mix (Int64.of_int a))
      (Int64.add
         (Int64.mul (mix (Int64.of_int b)) 0x9E3779B97F4A7C15L)
         (mix (Int64.of_int c)))
  in
  (* Int64.to_int keeps the low 63 bits, so bit 62 would land in the
     OCaml sign bit; mask it off to keep bitmap indices non-negative *)
  Int64.to_int (mix z) land max_int

let set_bit buf nbits h =
  let bit = h mod nbits in
  let byte = bit lsr 3 and mask = 1 lsl (bit land 7) in
  Bytes.unsafe_set buf byte
    (Char.chr (Char.code (Bytes.unsafe_get buf byte) lor mask))

let touch_access t ~obj_id ~slot =
  set_bit t.map (map_bytes * 8) (hash3 1 obj_id slot)

let touch_boundary t ~client ~kind ~index =
  set_bit t.map (map_bytes * 8) (hash3 (2 + kind) client index)

let touch_epoch t ~client ~volatile =
  set_bit t.map (map_bytes * 8) (hash3 40 client volatile)

let touch_pair t ~kind ~producer_line ~consumer_line =
  set_bit t.pairs (pair_bytes * 8) (hash3 (50 + kind) producer_line consumer_line)

let fingerprint t = Digest.to_hex (Digest.bytes (Bytes.cat t.map t.pairs))

(* Accumulated seen-map for a campaign. [merge] ORs a run's coverage in
   and reports how many bits were new, split general/pair. *)
type seen = { smap : Bytes.t; spairs : Bytes.t }

let seen_create () =
  {
    smap = Bytes.make map_bytes '\000';
    spairs = Bytes.make pair_bytes '\000';
  }

let popcount_byte b =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go b 0

let or_count ~into src =
  let fresh = ref 0 in
  for i = 0 to Bytes.length src - 1 do
    let s = Char.code (Bytes.unsafe_get src i)
    and d = Char.code (Bytes.unsafe_get into i) in
    let nw = s land lnot d in
    if nw <> 0 then begin
      fresh := !fresh + popcount_byte nw;
      Bytes.unsafe_set into i (Char.chr (d lor s))
    end
  done;
  !fresh

let merge seen t =
  (or_count ~into:seen.smap t.map, or_count ~into:seen.spairs t.pairs)

let seen_fingerprint seen =
  Digest.to_hex (Digest.bytes (Bytes.cat seen.smap seen.spairs))
