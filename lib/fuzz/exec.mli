(** Deterministic interleaved execution of one schedule genome: all
    logical clients run as effect-based coroutines on one domain over
    one shared heap, yielding to the scheduler at every persistence
    boundary. The same (program, genome) replays bit for bit.

    Client entry points: [fuzz_client_<c>] if defined, else [entry];
    [fuzz_setup] (if defined) runs first and its return value is passed
    to every client entry. *)

type result = {
  fingerprint : string;  (** coverage digest, byte-stable *)
  cov : Coverage.t;
  warnings : Analysis.Warning.t list;
      (** dynamic checker + fuzz detectors, deduplicated and sorted *)
  nboundaries : int;  (** boundaries crossed — the genome index space *)
  aborted : string option;  (** first client abort, if any *)
}

val run :
  prog:Nvmir.Prog.t ->
  model:Analysis.Model.t ->
  ?entry:string ->
  ?entry_args:int list ->
  ?fuel:int ->
  clients:int ->
  genome:Genome.t ->
  unit ->
  result
