(** PM-aware coverage: a cheap, deterministic fingerprint of what an
    execution touched persistency-wise — slots accessed, boundary
    observations, epoch crossings in one bitmap; WAW/RAW dependence
    pair identities in a second, so the energy schedule can favor
    schedules exposing new pairs. *)

type t

val create : unit -> t
val touch_access : t -> obj_id:int -> slot:int -> unit
val touch_boundary : t -> client:int -> kind:int -> index:int -> unit
val touch_epoch : t -> client:int -> volatile:int -> unit

val touch_pair : t -> kind:int -> producer_line:int -> consumer_line:int -> unit
(** [kind] 0 = WAW, 1 = RAW, 2 = cross-client RAW. *)

val fingerprint : t -> string
(** Hex digest of both bitmaps; byte-identical across replays of the
    same (program, genome, seed). *)

(** Accumulated campaign seen-map. *)
type seen

val seen_create : unit -> seen

val merge : seen -> t -> int * int
(** OR a run's coverage into the seen-map; returns (new general bits,
    new dependence-pair bits). *)

val seen_fingerprint : seen -> string
