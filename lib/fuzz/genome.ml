(* Schedule genomes: the fuzzer's search space is WHERE to preempt, not
   what to execute. A genome carries one active delay-injection point
   ([probe_at], PMRace injects a single delay per execution) plus a set
   of context switches keyed by global boundary index. Replaying a
   genome under the deterministic scheduler reproduces the interleaving
   bit for bit. *)

type switch = { at : int; target : int }
(* At global boundary [at], hand the token to the client [target] hops
   ahead of the yielding one (mod live clients). *)

type t = { probe_at : int; switches : switch list }
(* [switches] sorted by [at], at most one entry per index; [probe_at]
   = -1 means no injection (plain replay). *)

let initial = { probe_at = -1; switches = [] }
let probe at = { probe_at = at; switches = [] }

let set_switch switches sw =
  List.sort
    (fun a b -> Int.compare a.at b.at)
    (sw :: List.filter (fun s -> s.at <> sw.at) switches)

let switch_at ~at ~target = { probe_at = -1; switches = [ { at; target } ] }
let find_switch t at = List.find_opt (fun s -> s.at = at) t.switches

(* One mutation step, deterministic under [rng]. The operator mix keeps
   the genome small: schedules that preempt everywhere explore the same
   states as schedules that preempt once, but cost determinism-budget
   to replay and are hard to attribute. *)
let mutate rng ~nboundaries ~nclients t =
  let nb = max 1 nboundaries in
  let pick_at () = Workloads.Gen.next_int rng nb in
  let reprobe t = { t with probe_at = pick_at () } in
  let add_switch t =
    if nclients < 2 then reprobe t
    else
      let at = pick_at () in
      let target = 1 + Workloads.Gen.next_int rng (nclients - 1) in
      { t with switches = set_switch t.switches { at; target } }
  in
  let drop_switch t =
    match t.switches with
    | [] -> reprobe t
    | sws ->
      let i = Workloads.Gen.next_int rng (List.length sws) in
      { t with switches = List.filteri (fun j _ -> j <> i) sws }
  in
  let shift_switch t =
    match t.switches with
    | [] -> reprobe t
    | sws ->
      let i = Workloads.Gen.next_int rng (List.length sws) in
      let delta = if Workloads.Gen.next_int rng 2 = 0 then 1 else -1 in
      let sws' =
        List.mapi
          (fun j s ->
            if j = i then { s with at = max 0 (min (nb - 1) (s.at + delta)) }
            else s)
          sws
      in
      { t with switches = List.fold_left set_switch [] sws' }
  in
  match Workloads.Gen.next_int rng 5 with
  | 0 | 1 -> reprobe t
  | 2 -> add_switch t
  | 3 -> drop_switch t
  | _ -> shift_switch t

let pp ppf t =
  Fmt.pf ppf "probe@%d" t.probe_at;
  List.iter (fun s -> Fmt.pf ppf " sw@%d+%d" s.at s.target) t.switches

let to_string t = Fmt.str "%a" pp t
