(* The two PMRace-style detectors the fuzzer adds over the dynamic
   checker, plus the per-run dependence tracking that feeds the
   coverage map.

   1. Synchronization-boundary durability (probe-gated): when the
      genome's delay-injection point lands on a [tx_end] or
      [epoch_end] boundary, every flush issued since the last fence is
      still in flight — a crash injected here loses or reorders it, yet
      the fixed-schedule replay sails through because the commit fence
      (or the next epoch's barriers) retroactively drains it. Reported
      as [Missing_persist_barrier] at the flush site.

   2. Inter-thread persistency inconsistency (schedule-gated): client B
      reads a slot client A has written but not yet persisted, then
      makes its own derived state durable while A's source is still
      volatile. A crash after B's fence recovers B's durable effects
      built on data that never reached NVM. Reported as
      [Strand_dependence] at the read site, post-validated on the crash
      image ([materialize ~persist:[]]) so re-reads of already-durable
      or identical data are killed as false positives.

   Both detectors reuse existing rule ids: they refine where and when
   the rules fire, not the taxonomy. *)

let m_probe_detections =
  Obs.Metrics.counter "fuzz.probe_detections"
    ~desc:"synchronization-boundary warnings fired at delay-injection points"

let m_interthread =
  Obs.Metrics.counter "fuzz.interthread_detections"
    ~desc:"validated inter-thread persistency inconsistencies"

let m_fp_killed =
  Obs.Metrics.counter "fuzz.fp_killed"
    ~desc:"inter-thread candidates killed by crash-image validation"

type write_info = { writer : int; wloc : Nvmir.Loc.t }

type candidate = {
  consumer : int;
  src : Runtime.Pmem.addr;
  read_val : Runtime.Value.t;
  rloc : Nvmir.Loc.t;
  producer : write_info;
  mutable derived : Runtime.Pmem.addr list;
      (* consumer writes after the tainted read: the state whose
         durability makes the inconsistency real *)
}

type t = {
  pmem : Runtime.Pmem.t;
  model : Analysis.Model.t;
  cov : Coverage.t;
  mutable client : int;
  mutable boundary : Runtime.Interp.boundary option;
      (* boundary context of the instruction currently executing, set
         by the scheduler hook: an [on_fence] seen under [Btx_end] is a
         commit fence, under [Bfence] an explicit one *)
  last_write : (Runtime.Pmem.addr, write_info) Hashtbl.t;
  last_read : (Runtime.Pmem.addr, Nvmir.Loc.t) Hashtbl.t;
  mutable pending_flushes : (Runtime.Pmem.addr * Nvmir.Loc.t) list;
      (* explicit flushes not yet ordered by any fence, newest first *)
  mutable candidates : candidate list;
  mutable warnings : Analysis.Warning.t list;
}

let create ~model ~cov pmem =
  {
    pmem;
    model;
    cov;
    client = 0;
    boundary = None;
    last_write = Hashtbl.create 64;
    last_read = Hashtbl.create 64;
    pending_flushes = [];
    candidates = [];
    warnings = [];
  }

let set_client t c = t.client <- c
let set_boundary t b = t.boundary <- b

(* The genome and schedule digest are stamped in by [Campaign] once the
   execution's coverage is known; the detector records the transition it
   observed. Only built when witness capture is enabled. *)
let warn t ?transition ~rule ~loc message =
  let witness =
    if Analysis.Witness.enabled () then
      Some
        (Analysis.Witness.Fuzz
           {
             f_genome = "";
             f_schedule = "";
             f_transition =
               (match transition with Some f -> f () | None -> message);
           })
    else None
  in
  t.warnings <-
    Analysis.Warning.make ~origin:Analysis.Warning.Dynamic ?witness ~rule
      ~model:t.model ~loc ~fname:"<fuzz>" message
    :: t.warnings

let on_write t addr loc =
  Coverage.touch_access t.cov ~obj_id:addr.Runtime.Pmem.obj_id
    ~slot:addr.Runtime.Pmem.slot;
  (match Hashtbl.find_opt t.last_write addr with
  | Some prev ->
    Coverage.touch_pair t.cov ~kind:0 ~producer_line:prev.wloc.Nvmir.Loc.line
      ~consumer_line:loc.Nvmir.Loc.line
  | None -> ());
  Hashtbl.replace t.last_write addr { writer = t.client; wloc = loc };
  (* a write after a tainted read is derived state for every live
     candidate of this client *)
  List.iter
    (fun c -> if c.consumer = t.client then c.derived <- addr :: c.derived)
    t.candidates

let on_read t addr loc =
  Coverage.touch_access t.cov ~obj_id:addr.Runtime.Pmem.obj_id
    ~slot:addr.Runtime.Pmem.slot;
  Hashtbl.replace t.last_read addr loc;
  match Hashtbl.find_opt t.last_write addr with
  | None -> ()
  | Some prev ->
    Coverage.touch_pair t.cov ~kind:1 ~producer_line:prev.wloc.Nvmir.Loc.line
      ~consumer_line:loc.Nvmir.Loc.line;
    if
      prev.writer <> t.client
      && Runtime.Pmem.slot_state t.pmem addr <> Runtime.Pmem.Clean
    then begin
      Coverage.touch_pair t.cov ~kind:2 ~producer_line:prev.wloc.Nvmir.Loc.line
        ~consumer_line:loc.Nvmir.Loc.line;
      t.candidates <-
        {
          consumer = t.client;
          src = addr;
          read_val = Runtime.Pmem.cached_value t.pmem addr;
          rloc = loc;
          producer = prev;
          derived = [];
        }
        :: t.candidates
    end

let on_flush t ~obj_id ~first_slot ~nslots ~dirty:_ loc =
  ignore nslots;
  t.pending_flushes <-
    ({ Runtime.Pmem.obj_id; slot = first_slot }, loc) :: t.pending_flushes

(* The consumer just made its flushed state durable. Any candidate of
   this client whose source slot is STILL volatile is an inter-thread
   inconsistency — validated against the crash image: the durable view
   right now must disagree with the value the consumer acted on, and
   at least one derived slot must actually have reached NVM. *)
let check_candidates t =
  let fire, keep =
    List.partition
      (fun c ->
        c.consumer = t.client
        && Runtime.Pmem.slot_state t.pmem c.src <> Runtime.Pmem.Clean)
      t.candidates
  in
  List.iter
    (fun c ->
      let image = Runtime.Pmem.materialize t.pmem ~persist:[] in
      let image_val =
        match Hashtbl.find_opt image c.src.Runtime.Pmem.obj_id with
        | Some slots when c.src.Runtime.Pmem.slot < Array.length slots ->
          slots.(c.src.Runtime.Pmem.slot)
        | _ -> Runtime.Value.Vnull
      in
      let durable_derived =
        List.exists
          (fun d ->
            Runtime.Value.equal
              (Runtime.Pmem.durable_value t.pmem d)
              (Runtime.Pmem.cached_value t.pmem d))
          c.derived
      in
      if
        durable_derived
        && not (Runtime.Value.equal image_val c.read_val)
      then begin
        Obs.Metrics.incr m_interthread;
        warn t
          ~transition:(fun () ->
            Fmt.str
              "obj%d[%d]: consumer %d read the volatile value, derived state \
               reached NVM while the source slot is %s in the crash image"
              c.src.Runtime.Pmem.obj_id c.src.Runtime.Pmem.slot c.consumer
              (if Runtime.Value.equal image_val Runtime.Value.Vnull then
                 "absent"
               else "stale"))
          ~rule:Analysis.Warning.Strand_dependence ~loc:c.rloc
          (Fmt.str
             "durable state built on thread %d's unpersisted write at %a: a \
              crash now recovers the derived values with the source still \
              volatile"
             c.producer.writer Nvmir.Loc.pp c.producer.wloc)
      end
      else Obs.Metrics.incr m_fp_killed)
    fire;
  t.candidates <- keep

let on_fence t _loc =
  if t.pending_flushes <> [] then check_candidates t;
  t.pending_flushes <- []

(* Probe: the genome's single delay-injection point landed on this
   boundary. A crash is simulated here; what is still in flight and
   semantically relied upon becomes a warning. *)
let probe t boundary _loc =
  match boundary with
  | Runtime.Interp.Btx_end | Runtime.Interp.Bepoch_end ->
    let seen = Hashtbl.create 8 in
    List.iter
      (fun ((_, floc) : Runtime.Pmem.addr * Nvmir.Loc.t) ->
        if not (Hashtbl.mem seen floc) then begin
          Hashtbl.replace seen floc ();
          Obs.Metrics.incr m_probe_detections;
          warn t ~rule:Analysis.Warning.Missing_persist_barrier ~loc:floc
            (Fmt.str
               "flush at %a is unordered at the %s boundary: a crash at the \
                injected delay point loses or reorders it (no fence since \
                the write-back)"
               Nvmir.Loc.pp floc
               (Runtime.Interp.boundary_name boundary))
        end)
      (List.rev t.pending_flushes)
  | _ -> ()

let listener t : Runtime.Pmem.listener =
  {
    Runtime.Pmem.null_listener with
    Runtime.Pmem.on_write = (fun addr loc -> on_write t addr loc);
    on_read = (fun addr loc -> on_read t addr loc);
    on_flush =
      (fun ~obj_id ~first_slot ~nslots ~dirty loc ->
        (* commit-internal write-backs are suppressed by Pmem, so every
           notification here is a program flush *)
        on_flush t ~obj_id ~first_slot ~nslots ~dirty loc);
    on_fence = (fun loc -> on_fence t loc);
  }

let attach t = Runtime.Pmem.add_listener t.pmem (listener t)
let warnings t = Analysis.Warning.dedup (List.rev t.warnings)
