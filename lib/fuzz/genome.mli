(** Schedule genomes: one active delay-injection point (PMRace injects
    a single delay per execution) plus context switches keyed by global
    boundary index. Replaying a genome under the deterministic
    scheduler reproduces the interleaving bit for bit. *)

type switch = { at : int; target : int }
(** At global boundary [at], hand the token to the client [target] hops
    ahead of the yielding one (mod live clients). *)

type t = { probe_at : int; switches : switch list }
(** [switches] sorted by [at], at most one per index; [probe_at] = -1
    means no injection (plain fixed-schedule replay). *)

val initial : t
(** No probe, no switches: the fixed schedule the harness replays. *)

val probe : int -> t
val switch_at : at:int -> target:int -> t
val find_switch : t -> int -> switch option

val mutate :
  Workloads.Gen.rng -> nboundaries:int -> nclients:int -> t -> t
(** One mutation step (reprobe / add / drop / shift a switch),
    deterministic under the stream. *)

val pp : t Fmt.t
val to_string : t -> string
