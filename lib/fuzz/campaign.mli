(** Fuzzing campaigns over schedule genomes: a deterministic probe /
    switch sweep followed by energy-weighted havoc (guided mode), or a
    uniform draw of the same budget (random mode, the ablation
    baseline). Outcomes are pure functions of (target, mode, seed,
    budget), independent of the pool's domain count. *)

type mode = Guided | Random

val mode_name : mode -> string

type target = {
  tname : string;
  prog : Nvmir.Prog.t;
  model : Analysis.Model.t;
  entry : string;
  entry_args : int list;
  clients : int;
}

type outcome = {
  target : string;
  mode : mode;
  budget : int;
  executions : int;  (** fuzzed schedules run (baseline replay excluded) *)
  nboundaries : int;  (** genome index space, from the baseline replay *)
  novel_schedules : int;
  pair_bits : int;  (** distinct WAW/RAW dependence-pair bits seen *)
  aborted : int;
  baseline_warnings : Analysis.Warning.t list;
      (** fixed-schedule replay (no probe, no switches) *)
  warnings : Analysis.Warning.t list;
      (** union over the whole campaign, deduplicated and sorted *)
  coverage : string;  (** digest of the accumulated seen-map *)
}

val run :
  ?seed:int -> ?budget:int -> ?domains:int -> mode:mode -> target -> outcome

val recovers :
  truth:Inject.Mutation.truth -> base:outcome -> outcome -> bool
(** Lenient dynamic-tier match (rule in expected set, expected file),
    minus the (rule, file) pairs the base program's campaign produces
    under the same parameters. *)
