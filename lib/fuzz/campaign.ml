(* Fuzzing campaigns: drive [Exec] over a budget of schedule genomes.

   Guided mode is AFL-shaped, adapted to the tiny-but-structured
   schedule space:

   - deterministic stage 1: sweep the single probe across every
     boundary index (the PMRace delay-injection sweep);
   - deterministic stage 2 (multi-client): sweep a single context
     switch across every boundary index;
   - havoc: mutate parents drawn from the seed pool, where a parent's
     energy is what its discovery contributed in coverage novelty —
     with new WAW/RAW dependence-pair bits weighted 4x over general
     bits, per the PM-aware power schedule.

   Random mode (the ablation baseline) spends the same budget on
   genomes drawn uniformly: a uniform probe index plus, half the time,
   a uniform context switch.

   Determinism: executions are pure functions of their genome, batches
   are merged in submission order, and every random draw comes from the
   purpose-split stream [Gen.stream seed (Schedule exec_index)] — so an
   outcome is a pure function of (target, mode, seed, budget),
   independent of the pool's domain count. *)

let m_novel =
  Obs.Metrics.counter "fuzz.novel_schedules"
    ~desc:"schedules whose coverage added unseen bits to the campaign map"

type mode = Guided | Random

let mode_name = function Guided -> "guided" | Random -> "random"

type target = {
  tname : string;
  prog : Nvmir.Prog.t;
  model : Analysis.Model.t;
  entry : string;
  entry_args : int list;
  clients : int;
}

type outcome = {
  target : string;
  mode : mode;
  budget : int;
  executions : int;  (** fuzzed schedules run (baseline replay excluded) *)
  nboundaries : int;  (** genome index space, from the baseline replay *)
  novel_schedules : int;
  pair_bits : int;  (** distinct WAW/RAW dependence-pair bits seen *)
  aborted : int;
  baseline_warnings : Analysis.Warning.t list;
      (** fixed-schedule replay (no probe, no switches) *)
  warnings : Analysis.Warning.t list;
      (** union over the whole campaign, deduplicated and sorted *)
  coverage : string;  (** digest of the accumulated seen-map *)
}

(* Stamp the reproducing genome and the execution's coverage digest
   into any fuzz witnesses [Detect] left blank — the detector observes
   the transition but only the campaign knows which schedule produced
   it. No-op unless witness capture is enabled. *)
let stamp_witnesses genome (r : Exec.result) =
  if not (Analysis.Witness.enabled ()) then r.Exec.warnings
  else
    let g = Genome.to_string genome in
    let digest = Coverage.fingerprint r.Exec.cov in
    List.map
      (fun (w : Analysis.Warning.t) ->
        match w.Analysis.Warning.witness with
        | Some (Analysis.Witness.Fuzz f) when f.f_genome = "" ->
          Analysis.Warning.with_witness w
            (Analysis.Witness.Fuzz
               { f with f_genome = g; f_schedule = digest })
        | _ -> w)
      r.Exec.warnings

let run ?(seed = 1) ?(budget = 16) ?domains ~mode target =
  Obs.Span.with_ ~name:"fuzz-campaign"
    ~args:[ ("target", target.tname); ("mode", mode_name mode) ]
  @@ fun () ->
  let exec genome =
    Exec.run ~prog:target.prog ~model:target.model ~entry:target.entry
      ~entry_args:target.entry_args ~clients:target.clients ~genome ()
  in
  let baseline = exec Genome.initial in
  let nb = max 1 baseline.nboundaries in
  let seen = Coverage.seen_create () in
  ignore (Coverage.merge seen baseline.cov);
  let executions = ref 0 in
  let novel = ref 0 in
  let pair_bits = ref 0 in
  let aborted = ref 0 in
  let acc = ref (stamp_witnesses Genome.initial baseline) in
  let pool = ref [ (Genome.initial, 1) ] in
  let run_batch genomes =
    if genomes <> [] then begin
      let results =
        Pool.map ?domains ~chunk:1 (Pool.default ()) exec genomes
      in
      (* merge in submission order: the seed pool and novelty counters
         evolve identically whatever the domain count *)
      List.iter2
        (fun g (r : Exec.result) ->
          incr executions;
          let nm, np = Coverage.merge seen r.Exec.cov in
          pair_bits := !pair_bits + np;
          if nm + np > 0 then begin
            incr novel;
            Obs.Metrics.incr m_novel;
            pool := (g, 1 + nm + (4 * np)) :: !pool
          end;
          if r.Exec.aborted <> None then incr aborted;
          acc := stamp_witnesses g r @ !acc)
        genomes results
    end
  in
  let remaining () = budget - !executions in
  (match mode with
  | Guided ->
    (* stage 1: probe sweep *)
    run_batch (List.init (min budget nb) Genome.probe);
    (* stage 2: single-switch sweep *)
    if target.clients > 1 then
      run_batch
        (List.init
           (min (remaining ()) nb)
           (fun i -> Genome.switch_at ~at:i ~target:1));
    (* havoc: energy-weighted parents, PM-aware power schedule *)
    while remaining () > 0 do
      let batch =
        List.init
          (min 8 (remaining ()))
          (fun j ->
            let rng =
              Workloads.Gen.stream seed
                (Workloads.Gen.Schedule (!executions + j))
            in
            let total = List.fold_left (fun a (_, e) -> a + e) 0 !pool in
            let pick = Workloads.Gen.next_int rng (max 1 total) in
            let parent =
              let rec go n = function
                | [] -> Genome.initial
                | [ (g, _) ] -> g
                | (g, e) :: rest -> if n < e then g else go (n - e) rest
              in
              go pick !pool
            in
            Genome.mutate rng ~nboundaries:nb ~nclients:target.clients parent)
      in
      run_batch batch
    done
  | Random ->
    run_batch
      (List.init budget (fun i ->
           let rng = Workloads.Gen.stream seed (Workloads.Gen.Schedule i) in
           let probe_at = Workloads.Gen.next_int rng nb in
           let switches =
             if target.clients > 1 && Workloads.Gen.next_int rng 2 = 0 then
               [
                 {
                   Genome.at = Workloads.Gen.next_int rng nb;
                   target =
                     1 + Workloads.Gen.next_int rng (target.clients - 1);
                 };
               ]
             else []
           in
           { Genome.probe_at; switches })));
  {
    target = target.tname;
    mode;
    budget;
    executions = !executions;
    nboundaries = nb;
    novel_schedules = !novel;
    pair_bits = !pair_bits;
    aborted = !aborted;
    baseline_warnings = baseline.Exec.warnings;
    warnings = Analysis.Warning.dedup (Analysis.Warning.sort !acc);
    coverage = Coverage.seen_fingerprint seen;
  }

(* ------------------------------------------------------------------ *)
(* Recovery scoring against injection ground truth.

   Mirrors [Inject.Evaluate]'s lenient dynamic matching: the online
   detectors report at observation sites, so a recovery is any campaign
   warning whose rule is in the truth's expected set at the expected
   file — minus the (rule, file) pairs the base program's campaign
   produces under the same mode/seed/budget, so pre-existing noise
   never counts as a catch. *)

let lenient_matches (e : Inject.Mutation.expect) (w : Analysis.Warning.t) =
  List.mem w.Analysis.Warning.rule e.Inject.Mutation.rules
  && String.equal w.Analysis.Warning.loc.Nvmir.Loc.file e.Inject.Mutation.file

let recovers ~(truth : Inject.Mutation.truth) ~(base : outcome) (o : outcome) =
  let base_keys =
    List.map
      (fun (w : Analysis.Warning.t) ->
        (w.Analysis.Warning.rule, w.Analysis.Warning.loc.Nvmir.Loc.file))
      base.warnings
  in
  List.exists
    (fun (w : Analysis.Warning.t) ->
      lenient_matches truth.Inject.Mutation.primary w
      && not
           (List.mem
              (w.Analysis.Warning.rule, w.Analysis.Warning.loc.Nvmir.Loc.file)
              base_keys))
    o.warnings
