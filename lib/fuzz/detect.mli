(** The fuzzer's two PMRace-style detectors plus per-run dependence
    tracking feeding the coverage map.

    - Synchronization-boundary durability (probe-gated): flushes still
      unordered when the delay-injection point lands on a [tx_end] /
      [epoch_end] boundary → [Missing_persist_barrier] at the flush.
    - Inter-thread persistency inconsistency (schedule-gated): durable
      state built on another client's unpersisted write →
      [Strand_dependence] at the read, post-validated on the crash
      image so benign re-reads are killed.

    Existing rule ids are reused: the detectors refine where the rules
    fire, not the taxonomy. *)

type t

val create : model:Analysis.Model.t -> cov:Coverage.t -> Runtime.Pmem.t -> t

val attach : t -> unit
(** Register the tracking listener on the heap. *)

val set_client : t -> int -> unit
val set_boundary : t -> Runtime.Interp.boundary option -> unit

val probe : t -> Runtime.Interp.boundary -> Nvmir.Loc.t -> unit
(** The genome's delay-injection point landed on this boundary (called
    before the instruction executes). *)

val warnings : t -> Analysis.Warning.t list
(** Deduplicated, in firing order. *)
