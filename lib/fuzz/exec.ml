(* Deterministic interleaved execution of one schedule genome.

   All logical clients run as effect-based coroutines on ONE domain over
   ONE shared heap: a client yields to the scheduler at every
   persistence boundary (the [Interp.boundary_hook] performs [Yield]),
   and the genome decides — by global boundary index — who runs next
   and where the single delay-injection probe fires. No wall clock, no
   domain scheduler: the same (program, genome) replays bit for bit,
   which is what makes coverage fingerprints and warning sets
   byte-identical across runs and across pool domain counts (campaigns
   parallelize across independent executions, never inside one).

   Client entry points: if the program defines [fuzz_client_<c>] it is
   client [c]'s entry; otherwise every client runs [entry]. If the
   program defines [fuzz_setup], it runs first (unscheduled) and its
   return value — typically a reference to a shared allocation — is
   passed to every client entry. *)

let m_execs =
  Obs.Metrics.counter "fuzz.execs"
    ~desc:"schedule executions (one interleaved run of all clients)"

type _ Effect.t +=
  | Yield : int * Runtime.Interp.boundary * Nvmir.Loc.t -> unit Effect.t

type status =
  | Not_started of (unit -> unit)
  | Waiting of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type result = {
  fingerprint : string;
  cov : Coverage.t;
  warnings : Analysis.Warning.t list;
  nboundaries : int;
  aborted : string option;
}

let boundary_kind = function
  | Runtime.Interp.Bflush -> 0
  | Runtime.Interp.Bfence -> 1
  | Runtime.Interp.Bpersist -> 2
  | Runtime.Interp.Btx_begin -> 3
  | Runtime.Interp.Btx_end -> 4
  | Runtime.Interp.Bepoch_begin -> 5
  | Runtime.Interp.Bepoch_end -> 6
  | Runtime.Interp.Bstrand_begin -> 7
  | Runtime.Interp.Bstrand_end -> 8

let run ~prog ~model ?(entry = "main") ?(entry_args = []) ?(fuel = 2_000_000)
    ~clients ~genome () =
  Obs.Metrics.incr m_execs;
  let clients = max 1 clients in
  let pmem = Runtime.Pmem.create () in
  let dyn = Runtime.Dynamic.create ~model () in
  Runtime.Dynamic.attach dyn pmem;
  let cov = Coverage.create () in
  let det = Detect.create ~model ~cov pmem in
  Detect.attach det;
  let counter = ref 0 in
  let state = Array.make clients Finished in
  let aborted = ref None in
  let set_active c =
    Runtime.Dynamic.set_thread dyn c;
    Detect.set_client det c
  in
  (* setup phase: unscheduled, attributed to client 0 *)
  set_active 0;
  let shared =
    match Nvmir.Prog.find_func prog "fuzz_setup" with
    | None -> None
    | Some _ -> (
      let si = Runtime.Interp.create ~fuel ~pmem prog in
      match Runtime.Interp.run_values ~entry:"fuzz_setup" ~args:[] si with
      | Runtime.Value.Vnull -> None
      | v -> Some v)
  in
  let client_entry c =
    let name = Fmt.str "fuzz_client_%d" c in
    if Nvmir.Prog.find_func prog name <> None then name else entry
  in
  let client_args =
    match shared with
    | Some v -> [ v ]
    | None -> List.map (fun n -> Runtime.Value.Vint n) entry_args
  in
  let next_runnable from =
    let rec go i n =
      if n >= clients then None
      else
        let c = i mod clients in
        match state.(c) with Finished -> go (i + 1) (n + 1) | _ -> Some c
    in
    go from 0
  in
  let rec resume c =
    set_active c;
    match state.(c) with
    | Not_started f ->
      state.(c) <- Running;
      start c f
    | Waiting k ->
      state.(c) <- Running;
      Effect.Deep.continue k ()
    | Running | Finished -> schedule_from (c + 1)
  and schedule_from i =
    match next_runnable i with Some c -> resume c | None -> ()
  and start c f =
    Effect.Deep.match_with f ()
      {
        retc =
          (fun () ->
            state.(c) <- Finished;
            schedule_from (c + 1));
        exnc =
          (fun e ->
            state.(c) <- Finished;
            if !aborted = None then aborted := Some (Printexc.to_string e);
            schedule_from (c + 1));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield (yc, b, loc) ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let n = !counter in
                  incr counter;
                  Coverage.touch_boundary cov ~client:yc
                    ~kind:(boundary_kind b) ~index:n;
                  (if b = Runtime.Interp.Bepoch_end then
                     Coverage.touch_epoch cov ~client:yc
                       ~volatile:(Runtime.Pmem.volatile_slot_count pmem));
                  if n = genome.Genome.probe_at then Detect.probe det b loc;
                  let target =
                    match Genome.find_switch genome n with
                    | Some s -> (yc + s.Genome.target) mod clients
                    | None -> yc
                  in
                  if target <> yc && state.(target) <> Finished then begin
                    state.(yc) <- Waiting k;
                    resume target
                  end
                  else begin
                    set_active yc;
                    Effect.Deep.continue k ()
                  end)
            | _ -> None);
      }
  in
  Array.iteri
    (fun c _ ->
      let interp =
        Runtime.Interp.create ~fuel
          ~boundary_hook:(fun b loc ->
            Effect.perform (Yield (c, b, loc));
            (* resumed: the boundary instruction executes next, so the
               detector knows e.g. that the coming fence is a commit *)
            Detect.set_boundary det (Some b))
          ~pmem prog
      in
      state.(c) <-
        Not_started
          (fun () ->
            ignore
              (Runtime.Interp.run_values ~entry:(client_entry c)
                 ~args:client_args interp)))
    state;
  schedule_from 0;
  let warnings =
    Analysis.Warning.dedup
      (Analysis.Warning.sort (Runtime.Dynamic.warnings dyn @ Detect.warnings det))
  in
  {
    fingerprint = Coverage.fingerprint cov;
    cov;
    warnings;
    nboundaries = !counter;
    aborted = !aborted;
  }
