(** The shadow segment (§4.4): mirrors the persistent address space,
    recording per-slot access history for happens-before WAW/RAW race
    detection. Ordering uses a scalar barrier-count fast path (persist
    barriers in the runtime are global synchronization points); see
    DESIGN.md.

    The segment is lock-striped: cells are sharded by slot key, each
    shard guarded by its own mutex, so listeners on concurrent client
    domains can record accesses without racing on checker state. *)

type access = {
  strand : int;
  fence_at : int;  (** global barrier count when the access executed *)
  loc : Nvmir.Loc.t;
}

val ordered_before : access -> strand:int -> begin_fence:int -> bool
(** Is the previous access ordered before an access by [strand] whose
    region began at barrier count [begin_fence]? *)

val key : obj_id:int -> slot:int -> int
(** Int encoding of a slot address (avoids tuple hashing): the slot in
    the low {!slot_bits} bits, the object id above them.
    @raise Invalid_argument when either component is out of range —
    silent truncation would alias another object and fabricate races. *)

val slot_bits : int
val max_slot : int
val max_obj_id : int

type t

val create : ?shards:int -> unit -> t
(** [shards] is rounded up to a power of two (default 16). *)

val shard_count : t -> int
val clear : t -> unit

val record_write :
  t ->
  obj_id:int ->
  slot:int ->
  begin_fence:int ->
  access ->
  [ `Waw of access | `Raw of access ] list
(** Record a write; returns the races it completes (WAW with the
    previous writer, RAW with unordered readers). The conflict check and
    history update are atomic with respect to the cell's shard. *)

val record_read :
  t ->
  obj_id:int ->
  slot:int ->
  begin_fence:int ->
  access ->
  [ `Raw of access ] option

val ever_written : t -> obj_id:int -> slot:int -> bool
(** Has {!record_write} ever been called on this slot? *)

val tracked_cells : t -> int
val pp : t Fmt.t
