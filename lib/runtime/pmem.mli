(** The NVM runtime simulator: a persistent heap with an explicit
    cache-line write-back state machine
    ([Clean -> Dirty -> Flushed -> Clean]), undo-log transactions,
    epoch/strand annotations, a cost model, and listener hooks through
    which the dynamic checker observes execution (§4.4).

    The durable view ({!durable_value}) reflects only fenced data, with
    open transactions rolled back — exactly what survives the crash
    simulation in {!Crash}. *)

type slot_state = Clean | Dirty | Flushed

type addr = { obj_id : int; slot : int }
(** Concrete slot address. *)

(** Hooks invoked on persistent-memory events. Build with
    [{ null_listener with on_write = ... }]. *)
type listener = {
  on_alloc : obj_id:int -> persistent:bool -> size:int -> unit;
  on_write : addr -> Nvmir.Loc.t -> unit;
  on_read : addr -> Nvmir.Loc.t -> unit;
  on_flush :
    obj_id:int -> first_slot:int -> nslots:int -> dirty:bool ->
    Nvmir.Loc.t -> unit;
  on_fence : Nvmir.Loc.t -> unit;
  on_tx_begin : Nvmir.Loc.t -> unit;
  on_tx_end : Nvmir.Loc.t -> unit;
  on_epoch_begin : Nvmir.Loc.t -> unit;
  on_epoch_end : Nvmir.Loc.t -> unit;
  on_strand_begin : int -> Nvmir.Loc.t -> unit;
  on_strand_end : int -> Nvmir.Loc.t -> unit;
}

val null_listener : listener

type stats = {
  mutable stores : int;
  mutable loads : int;
  mutable flushes : int;
  mutable flushed_lines : int;
  mutable redundant_flushes : int;  (** flushes that found no dirty slot *)
  mutable fences : int;
  mutable txs : int;
  mutable log_copies : int;
  mutable cycles : int;  (** cost-model time *)
  mutable nvm_writes : int;  (** slots actually written back *)
}

type t

val create :
  ?config:Config.t -> ?first_obj_id:int -> ?obj_id_limit:int -> unit -> t
(** [first_obj_id] offsets object-id allocation so heaps created for
    concurrent clients never hand out the same id — shadow-segment keys
    stay globally unique when one checker observes many heaps.
    [obj_id_limit] is the exclusive end of the heap's id window:
    {!alloc} raises [Invalid_argument] instead of spilling into the
    next client's range, and {!Dynamic.attach_client} uses the window
    to reject overlapping client heaps.
    @raise Invalid_argument if the window is empty or negative. *)

val id_range : t -> int * int option
(** The heap's object-id window [(first, limit)]; [None] = unbounded. *)

val stats : t -> stats
val config : t -> Config.t
val add_listener : t -> listener -> unit
val remove_listeners : t -> unit

(** {1 Objects} *)

val alloc :
  t -> ?name:string -> tenv:Nvmir.Ty.env -> persistent:bool -> Nvmir.Ty.t -> int
(** Returns the object id; size in slots comes from the type. *)

val obj_size : t -> int -> int
val is_persistent : t -> int -> bool
val obj_ty : t -> int -> Nvmir.Ty.t
val obj_name : t -> int -> string option
val object_count : t -> int
val live_objects : t -> int list

(** {1 Memory operations} *)

val write : t -> ?loc:Nvmir.Loc.t -> addr -> Value.t -> unit
(** Marks the slot dirty; inside a transaction, auto-logs its durable
    value on first touch. @raise Invalid_argument out of bounds. *)

val read : t -> ?loc:Nvmir.Loc.t -> addr -> Value.t

val flush_range :
  t -> ?loc:Nvmir.Loc.t -> obj_id:int -> first_slot:int -> nslots:int ->
  unit -> unit
(** Line-granular clwb: dirty slots of every touched line become
    Flushed. Flushing clean data still costs a write-back command. *)

val flush_obj : t -> ?loc:Nvmir.Loc.t -> int -> unit

val fence : t -> ?loc:Nvmir.Loc.t -> unit -> unit
(** Drain: every Flushed slot becomes durable. *)

val persist_range :
  t -> ?loc:Nvmir.Loc.t -> obj_id:int -> first_slot:int -> nslots:int ->
  unit -> unit

val persist_obj : t -> ?loc:Nvmir.Loc.t -> int -> unit

(** {1 Transactions} *)

val tx_begin : t -> ?loc:Nvmir.Loc.t -> unit -> unit

val tx_add :
  t -> ?loc:Nvmir.Loc.t -> obj_id:int -> first_slot:int -> nslots:int ->
  unit -> unit
(** Explicit undo-log registration (TX_ADD).
    @raise Invalid_argument outside a transaction. *)

val tx_end : t -> ?loc:Nvmir.Loc.t -> unit -> unit
(** Commit: flush + fence everything the transaction touched, then fold
    the log into the parent transaction (if nested).
    @raise Invalid_argument outside a transaction. *)

val in_tx : t -> bool

(** {1 Annotations} — visible to listeners, no memory effect *)

val epoch_begin : t -> ?loc:Nvmir.Loc.t -> unit -> unit
val epoch_end : t -> ?loc:Nvmir.Loc.t -> unit -> unit
val strand_begin : t -> ?loc:Nvmir.Loc.t -> int -> unit
val strand_end : t -> ?loc:Nvmir.Loc.t -> int -> unit

(** {1 Crash semantics} *)

val durable_value : t -> addr -> Value.t
(** The value a slot holds after a crash right now: fenced data with
    open transactions rolled back. *)

val cached_value : t -> addr -> Value.t
val slot_state : t -> addr -> slot_state

val durable_snapshot : t -> (int, Value.t array) Hashtbl.t
(** Durable view of every persistent object. *)

(** {2 Crash-image enumeration}

    Lines are [(obj_id, line index)] pairs at the configured cache-line
    width. At a crash, any subset of the in-flight lines may have
    reached NVM; {!Crash_space} enumerates those images. *)

val dirty_lines : t -> (int * int) list
(** Lines with at least one [Dirty] slot, sorted. *)

val unfenced_lines : t -> (int * int) list
(** Lines with at least one [Flushed] (written back but not yet fenced)
    slot, sorted. *)

val inflight_lines : t -> (int * int) list
(** Union of {!dirty_lines} and {!unfenced_lines}: every line whose
    persistence at a crash is undetermined. *)

val materialize : t -> persist:(int * int) list -> (int, Value.t array) Hashtbl.t
(** The durable image if exactly the [persist] lines were written back
    before the crash: chosen lines carry their cached slots, everything
    else keeps its fenced value, and open transactions are rolled back.
    [materialize t ~persist:[]] equals {!durable_snapshot}. *)

val volatile_slot_count : t -> int
(** Slots whose cached value differs from the durable view; zero means a
    crash loses nothing. *)

(** {1 Media corruption} — the recovery tier's crash model.

    A crash image says which in-flight lines reached NVM; the media
    model adds that any line {e in flight} at the crash may additionally
    have been torn mid-write-back. {!corrupt_image} applies that model
    to a materialized image deterministically from a seed, {!restore}
    reconstitutes a post-crash heap (values clean and durable, corrupt
    flags set), and the CRC primitives implement the verified-storage
    CRC-validates-data axiom recovery code uses to detect the damage. *)

type corruption_kind =
  | Torn_line  (** each slot independently landed old or new *)
  | Bit_flip  (** one slot's value perturbed *)
  | Stale_line
      (** the line silently reverted to its pre-crash durable content —
          the stale-CRC case when the line holds a checksum *)

val corruption_kind_name : corruption_kind -> string

type corruption = {
  c_addr : addr;
  c_kind : corruption_kind;
  c_was : Value.t;  (** the value the image held before corruption *)
  c_now : Value.t;
}

val pp_corruption : corruption Fmt.t

val corrupt_image :
  t -> seed:int -> (int, Value.t array) Hashtbl.t -> corruption list
(** Mutates a {!materialize}d image in place: every in-flight line of
    [t] suffers one seeded corruption kind (torn / bit flip / stale).
    Returns the slots whose image value actually changed, in line
    order. Deterministic for a fixed heap and seed. *)

val restore :
  ?config:Config.t ->
  from:t ->
  image:(int, Value.t array) Hashtbl.t ->
  corrupt:addr list ->
  unit ->
  t
(** A fresh heap holding exactly the image: every object durable and
    [Clean], with the [corrupt] slots flagged. [from] supplies object
    metadata (types, names); volatile objects are not restored. *)

val is_corrupt : t -> addr -> bool

val corrupt_slot_count : t -> int
(** Corrupt-flagged slots still present (stores heal their slot). *)

val crc_of_range : t -> obj_id:int -> first_slot:int -> nslots:int -> int
(** Deterministic checksum over the cached values of a slot range. A
    guarded read: it does not notify listeners or trip corrupt-read
    accounting. *)

val range_corrupt : t -> obj_id:int -> first_slot:int -> nslots:int -> bool

val crc_check_range :
  t -> obj_id:int -> first_slot:int -> nslots:int -> crc:Value.t -> bool
(** The CRC-validates-data axiom: true iff no covered slot is
    corrupt-flagged {e and} [crc] equals the range's checksum — so a
    guarded read never accepts corrupted data, even on a collision. *)

val pp_stats : stats Fmt.t
