(* Crash-image state-space exploration.

   The prefix oracle in [Crash] injects a crash after the k-th
   persistent-memory event and inspects ONE durable image per point: the
   state in which nothing in flight persisted. Real hardware is less
   kind — at a crash, ANY subset of the cache lines still in flight
   (Dirty, or flushed but not yet fenced) may have reached NVM, decided
   by eviction and write-back completion order rather than by the
   program. The deep write-back reorderings that make persistency bugs
   "deep" live exactly in those other images, which is why enumerating
   reachable post-crash images is the standard ground-truth oracle for
   crash-consistency detectors (WITCHER, PMRace).

   At every crash point (and at program exit, where still-volatile lines
   are simply lost) this module:

   - takes the candidate lines from [Pmem.inflight_lines];
   - materializes each persisted-subset via [Pmem.materialize], with
     open transactions rolled back;
   - prunes by a persistence-equivalence digest — many subsets collapse
     to the same durable state (flushing clean data, overlapping lines),
     and the pruning ratio is reported;
   - enumerates exhaustively when 2^candidates fits the [bound], and
     otherwise draws a deterministic sample that always contains the
     empty and full subsets, so the prefix image is never lost and
     corpus-wide sweeps stay tractable.

   Consistency of an image is judged by an [oracle]: a user invariant
   over the materialized heap, or the built-in [Sequential] oracle that
   accepts an image iff it equals some program-order prefix of the
   recorded write sequence (the states strict persistency allows) and,
   at exit, iff no write is left volatile. Because the empty subset is
   always explored, every violation the prefix oracle reports is also
   found here — the differential test suite checks that inclusion. *)

type oracle =
  | Sequential
  | Invariant of ((Pmem.addr -> Value.t) -> (unit, string) result)

type task = Point of int | Exit

type witness = {
  w_task : task;
  w_persisted : (int * int) list; (* the lines that reached NVM *)
  w_detail : string;
}

type point_result = {
  task : task;
  candidate_lines : int;
  subsets_enumerated : int;
  distinct_images : int;
  sampled : bool; (* true when the subset space exceeded the bound *)
  witnesses : witness list; (* one per distinct inconsistent image *)
}

type report = {
  points : point_result list;
  crash_points : int; (* event-injection points, excluding exit *)
  images_enumerated : int;
  images_distinct : int;
  inconsistent : int;
  witnesses : witness list; (* all, in point order *)
}

let default_bound = 256
let count_points = Crash.count_events

(* Re-execute up to [task] (a crash point, or completion for [Exit]),
   recording the persistent write sequence for the Sequential oracle. *)
let run_to ?config ?entry ?args ~task prog =
  let pmem = Pmem.create ?config () in
  let writes = ref [] in
  let n = ref 0 in
  let at = match task with Point k -> k | Exit -> max_int in
  let bump _loc =
    incr n;
    if !n = at then raise Crash.Crashed
  in
  let listener =
    {
      Pmem.null_listener with
      Pmem.on_write =
        (fun a loc ->
          (* the cached value at notification time is the written value *)
          writes := (a, Pmem.cached_value pmem a) :: !writes;
          bump loc);
      on_flush =
        (fun ~obj_id:_ ~first_slot:_ ~nslots:_ ~dirty:_ loc -> bump loc);
      on_fence = bump;
      on_tx_begin = bump;
      on_tx_end = bump;
    }
  in
  Pmem.add_listener pmem listener;
  let interp = Interp.create ~pmem prog in
  let crashed =
    try
      ignore (Interp.run ?entry ?args interp);
      false
    with Crash.Crashed -> true
  in
  (pmem, List.rev !writes, crashed)

(* Persistence-equivalence digest: an injective rendering of the durable
   image, so images are compared (and pruned) by exact state, not by the
   subset that produced them. *)
let digest (img : (int, Value.t array) Hashtbl.t) =
  let ids = Hashtbl.fold (fun k _ a -> k :: a) img [] |> List.sort Int.compare in
  let b = Buffer.create 128 in
  List.iter
    (fun id ->
      Buffer.add_string b (Fmt.str "o%d:" id);
      Array.iter
        (fun v -> Buffer.add_string b (Fmt.str "%a;" Value.pp v))
        (Hashtbl.find img id))
    ids;
  Buffer.contents b

(* The digests of every program-order prefix of the write sequence,
   replayed over an initially-zero image of the objects live at the
   crash — the durable states a strictly-persistent execution can
   expose. *)
let prefix_digests pmem writes =
  let img = Hashtbl.create 8 in
  List.iter
    (fun id ->
      if Pmem.is_persistent pmem id then
        Hashtbl.replace img id (Array.make (Pmem.obj_size pmem id) Value.Vnull))
    (Pmem.live_objects pmem);
  let set = Hashtbl.create (List.length writes + 1) in
  Hashtbl.replace set (digest img) ();
  List.iter
    (fun ({ Pmem.obj_id; slot }, v) ->
      match Hashtbl.find_opt img obj_id with
      | Some arr ->
        arr.(slot) <- v;
        Hashtbl.replace set (digest img) ()
      | None -> ())
    writes;
  set

(* Subsets of [ncand] candidate lines as bool arrays: exhaustive while
   2^ncand fits the bound, otherwise a deterministic LCG sample that
   always includes the empty and full subsets. *)
let enumerate ~bound ~seed ncand =
  if ncand = 0 then ([ [||] ], false)
  else if ncand <= 20 && 1 lsl ncand <= bound then
    ( List.init (1 lsl ncand) (fun mask ->
          Array.init ncand (fun i -> mask land (1 lsl i) <> 0)),
      false )
  else begin
    let state = ref ((seed land 0x3FFFFFFF) lor 1) in
    let bit () =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (* the low bits of this LCG alternate; sample a middle bit *)
      (!state lsr 16) land 1 = 1
    in
    let n = max 1 bound in
    ( List.init n (fun i ->
          if i = 0 then Array.make ncand false
          else if i = 1 then Array.make ncand true
          else Array.init ncand (fun _ -> bit ())),
      true )
  end

let m_enumerated =
  Obs.Metrics.counter "crash.images_enumerated"
    ~desc:"write-back subsets enumerated across crash points"

let m_pruned =
  Obs.Metrics.counter "crash.images_pruned"
    ~desc:"enumerated subsets collapsed by persistence-equivalence pruning"

let m_sampled =
  Obs.Metrics.counter "crash.points_sampled"
    ~desc:"crash points whose subset space was sampled, not exhaustive"

let m_points =
  Obs.Metrics.counter "crash.points_explored" ~desc:"crash points explored"

let explore_task ?config ?entry ?args ?(bound = default_bound) ?(seed = 1)
    ?(oracle = Sequential) ~task prog : point_result =
  Obs.Span.with_ ~name:"crash-point" (fun () ->
  let pmem, writes, _crashed = run_to ?config ?entry ?args ~task prog in
  let candidates = Pmem.inflight_lines pmem in
  let cand = Array.of_list candidates in
  let ncand = Array.length cand in
  let seed = seed lxor (match task with Point k -> k * 7919 | Exit -> 104729) in
  let subs, sampled = enumerate ~bound ~seed ncand in
  let prefixes = lazy (prefix_digests pmem writes) in
  (* the exit reference: nothing in flight is lost *)
  let complete = lazy (digest (Pmem.materialize pmem ~persist:candidates)) in
  let seen = Hashtbl.create 64 in
  let witnesses = ref [] in
  let enumerated = ref 0 in
  List.iter
    (fun sub ->
      incr enumerated;
      let persist = ref [] in
      Array.iteri (fun i c -> if sub.(i) then persist := c :: !persist) cand;
      let persist = List.rev !persist in
      let img = Pmem.materialize pmem ~persist in
      let dg = digest img in
      if not (Hashtbl.mem seen dg) then begin
        Hashtbl.replace seen dg ();
        let verdict =
          match oracle with
          | Invariant f ->
            f (fun { Pmem.obj_id; slot } ->
                match Hashtbl.find_opt img obj_id with
                | Some arr when slot >= 0 && slot < Array.length arr ->
                  arr.(slot)
                | _ -> Value.Vnull)
          | Sequential -> (
            match task with
            | Point _ ->
              if Hashtbl.mem (Lazy.force prefixes) dg then Ok ()
              else
                Error
                  "durable image matches no program-order prefix of the \
                   write sequence"
            | Exit ->
              if String.equal dg (Lazy.force complete) then Ok ()
              else Error "writes still volatile at program exit are lost")
        in
        match verdict with
        | Ok () -> ()
        | Error d ->
          witnesses :=
            { w_task = task; w_persisted = persist; w_detail = d }
            :: !witnesses
      end)
    subs;
  if Obs.enabled () then begin
    Obs.Metrics.incr m_points;
    Obs.Metrics.add m_enumerated !enumerated;
    Obs.Metrics.add m_pruned (!enumerated - Hashtbl.length seen);
    if sampled then Obs.Metrics.incr m_sampled
  end;
  {
    task;
    candidate_lines = ncand;
    subsets_enumerated = !enumerated;
    distinct_images = Hashtbl.length seen;
    sampled;
    witnesses = List.rev !witnesses;
  })

(* ------------------------------------------------------------------ *)
(* Image enumeration for the recovery tier: the same subset walk as
   [explore_task], but returning the crashed pmem and the distinct
   materialized images instead of judging them against an oracle. The
   recovery executor corrupts and restores each image separately. *)

type crash_image = {
  ci_task : task;
  ci_persisted : (int * int) list;
  ci_image : (int, Value.t array) Hashtbl.t;
}

let crash_images ?config ?entry ?args ?(bound = default_bound) ?(seed = 1)
    ~task prog =
  let pmem, _writes, _crashed = run_to ?config ?entry ?args ~task prog in
  let candidates = Pmem.inflight_lines pmem in
  let cand = Array.of_list candidates in
  let ncand = Array.length cand in
  let seed = seed lxor (match task with Point k -> k * 7919 | Exit -> 104729) in
  let subs, sampled = enumerate ~bound ~seed ncand in
  let seen = Hashtbl.create 64 in
  let images = ref [] in
  List.iter
    (fun sub ->
      let persist = ref [] in
      Array.iteri (fun i c -> if sub.(i) then persist := c :: !persist) cand;
      let persist = List.rev !persist in
      let img = Pmem.materialize pmem ~persist in
      let dg = digest img in
      if not (Hashtbl.mem seen dg) then begin
        Hashtbl.replace seen dg ();
        images :=
          { ci_task = task; ci_persisted = persist; ci_image = img }
          :: !images
      end)
    subs;
  (pmem, List.rev !images, sampled)

let summarize ~crash_points (points : point_result list) : report =
  let images_enumerated =
    List.fold_left (fun a p -> a + p.subsets_enumerated) 0 points
  in
  let images_distinct =
    List.fold_left (fun a p -> a + p.distinct_images) 0 points
  in
  let witnesses = List.concat_map (fun (p : point_result) -> p.witnesses) points in
  {
    points;
    crash_points;
    images_enumerated;
    images_distinct;
    inconsistent = List.length witnesses;
    witnesses;
  }

let explore ?config ?entry ?args ?bound ?seed ?oracle prog : report =
  let total = Crash.count_events ?config ?entry ?args prog in
  let tasks = List.init total (fun i -> Point (i + 1)) @ [ Exit ] in
  summarize ~crash_points:total
    (List.map
       (fun task ->
         explore_task ?config ?entry ?args ?bound ?seed ?oracle ~task prog)
       tasks)

let test ?config ?entry ?args ?bound ?seed ~invariant prog =
  explore ?config ?entry ?args ?bound ?seed ~oracle:(Invariant invariant) prog

let consistent r = r.inconsistent = 0

let pruning_ratio r =
  if r.images_enumerated = 0 then 0.
  else 1. -. (float_of_int r.images_distinct /. float_of_int r.images_enumerated)

let violation_points r =
  List.filter_map
    (fun p ->
      match (p.task, p.witnesses) with
      | Point k, _ :: _ -> Some k
      | _ -> None)
    r.points
  |> List.sort_uniq Int.compare

let first_witness r = match r.witnesses with [] -> None | w :: _ -> Some w

(* ------------------------------------------------------------------ *)
(* Printers *)

let pp_task ppf = function
  | Point k -> Fmt.pf ppf "event %d" k
  | Exit -> Fmt.string ppf "exit"

let pp_line ppf (o, l) = Fmt.pf ppf "obj%d.L%d" o l

let pp_witness ppf w =
  Fmt.pf ppf "at %a: persisted {%a}: %s" pp_task w.w_task
    Fmt.(list ~sep:(any ", ") pp_line)
    w.w_persisted w.w_detail

let max_printed_witnesses = 10

let pp_report ppf r =
  let shown, hidden =
    let rec take n = function
      | w :: ws when n > 0 ->
        let s, h = take (n - 1) ws in
        (w :: s, h)
      | ws -> ([], List.length ws)
    in
    take max_printed_witnesses r.witnesses
  in
  Fmt.pf ppf
    "@[<v>crash points: %d (+ exit); images: %d enumerated, %d distinct \
     (pruning %.0f%%); inconsistent: %d%a%t@]"
    r.crash_points r.images_enumerated r.images_distinct
    (100. *. pruning_ratio r)
    r.inconsistent
    Fmt.(list ~sep:nop (fun ppf w -> Fmt.pf ppf "@   %a" pp_witness w))
    shown
    (fun ppf -> if hidden > 0 then Fmt.pf ppf "@   ... and %d more" hidden)
