(** Crash-image state-space exploration.

    Where {!Crash} inspects one durable image per crash point (nothing
    in flight persisted), this module enumerates the set of durable
    images reachable under the cache-line write-back model: at a crash,
    any subset of the in-flight lines ([Dirty], or [Flushed] but not yet
    fenced) may have reached NVM, with open transactions rolled back.
    Images are pruned by persistence-equivalence hashing and the subset
    space is capped by a bound — exhaustive below it, deterministic
    sampling above it (always including the empty and full subsets, so
    the prefix image is never lost). *)

(** How an image is judged consistent. *)
type oracle =
  | Sequential
      (** At a crash point, the image must match some program-order
          prefix of the persistent write sequence (the states strict
          persistency allows); at {!Exit} the image must equal the full
          write-back (no write left volatile). *)
  | Invariant of ((Pmem.addr -> Value.t) -> (unit, string) result)
      (** A user predicate over the materialized durable image. Unknown
          addresses read as {!Value.Vnull}. *)

(** A unit of exploration: crash after the k-th persistent event, or
    program exit (where still-volatile lines are simply lost). *)
type task = Point of int | Exit

type witness = {
  w_task : task;
  w_persisted : (int * int) list;
      (** the in-flight lines that reached NVM in this image *)
  w_detail : string;
}

type point_result = {
  task : task;
  candidate_lines : int;
  subsets_enumerated : int;
  distinct_images : int;
  sampled : bool;  (** the subset space exceeded the bound *)
  witnesses : witness list;  (** one per distinct inconsistent image *)
}

type report = {
  points : point_result list;
  crash_points : int;  (** event-injection points, excluding exit *)
  images_enumerated : int;
  images_distinct : int;
  inconsistent : int;
  witnesses : witness list;
}

val default_bound : int
(** 256 subsets per crash point. *)

val count_points :
  ?config:Config.t -> ?entry:string -> ?args:int list -> Nvmir.Prog.t -> int
(** Alias of {!Crash.count_events}: how many [Point] tasks a program
    has. *)

val explore_task :
  ?config:Config.t ->
  ?entry:string ->
  ?args:int list ->
  ?bound:int ->
  ?seed:int ->
  ?oracle:oracle ->
  task:task ->
  Nvmir.Prog.t ->
  point_result
(** Explore one crash point (re-executes the program up to it). Pure
    per-task, so callers may fan tasks out across domains and
    {!summarize} the results. *)

(** {1 Image enumeration} — the recovery tier's entry point. *)

(** One distinct durable image of a crash task: which in-flight lines
    reached NVM, and the materialized per-object slot arrays (transaction
    rollback applied). *)
type crash_image = {
  ci_task : task;
  ci_persisted : (int * int) list;
  ci_image : (int, Value.t array) Hashtbl.t;
}

val crash_images :
  ?config:Config.t ->
  ?entry:string ->
  ?args:int list ->
  ?bound:int ->
  ?seed:int ->
  task:task ->
  Nvmir.Prog.t ->
  Pmem.t * crash_image list * bool
(** The crashed heap, the distinct durable images it can leave (same
    enumeration, pruning and bound as {!explore_task}), and whether the
    subset space was sampled. The pmem is what {!Pmem.corrupt_image}
    seeds from and {!Pmem.restore} copies object metadata from. *)

val summarize : crash_points:int -> point_result list -> report

val explore :
  ?config:Config.t ->
  ?entry:string ->
  ?args:int list ->
  ?bound:int ->
  ?seed:int ->
  ?oracle:oracle ->
  Nvmir.Prog.t ->
  report
(** Sequential exploration of every crash point plus {!Exit}. *)

val test :
  ?config:Config.t ->
  ?entry:string ->
  ?args:int list ->
  ?bound:int ->
  ?seed:int ->
  invariant:((Pmem.addr -> Value.t) -> (unit, string) result) ->
  Nvmir.Prog.t ->
  report
(** [explore] with [oracle = Invariant invariant]. Because the empty
    persisted-subset is always enumerated, any violation {!Crash.test}
    reports with the same invariant is also found here. *)

val consistent : report -> bool
val pruning_ratio : report -> float
(** [1 - distinct/enumerated]; 0 when nothing was enumerated. *)

val violation_points : report -> int list
(** Crash points (excluding exit) with at least one witness, sorted. *)

val first_witness : report -> witness option

val pp_task : task Fmt.t
val pp_line : (int * int) Fmt.t
val pp_witness : witness Fmt.t
val pp_report : report Fmt.t
