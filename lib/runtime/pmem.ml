(* The NVM runtime simulator: a persistent heap with an explicit
   cache-line write-back state machine, undo-log transactions, epoch and
   strand annotations, a cycle-accurate-ish cost model, and listener
   hooks through which the dynamic checker observes execution (§4.4).

   Persistence state machine per slot:

     Clean --write--> Dirty --flush--> Flushed --fence--> Clean
                        ^                |
                        +---- write -----+   (re-dirtied before drain)

   The durable view ([durable_value]) reflects only fenced data, plus
   undo-log rollback for transactions that have not committed — exactly
   what survives the crash simulation in [Crash]. *)

type slot_state = Clean | Dirty | Flushed

type obj = {
  id : int;
  ty : Nvmir.Ty.t;
  persistent : bool;
  name : string option;
  cache : Value.t array; (* volatile (cached) view *)
  nvm : Value.t array; (* durable view *)
  state : slot_state array;
  corrupt : bool array;
      (* media-corruption flags: set only on heaps reconstituted from a
         corrupted crash image ([restore]); a store heals its slot *)
}

(* Concrete slot address. *)
type addr = { obj_id : int; slot : int }

type listener = {
  on_alloc : obj_id:int -> persistent:bool -> size:int -> unit;
  on_write : addr -> Nvmir.Loc.t -> unit;
  on_read : addr -> Nvmir.Loc.t -> unit;
  on_flush :
    obj_id:int -> first_slot:int -> nslots:int -> dirty:bool ->
    Nvmir.Loc.t -> unit;
  on_fence : Nvmir.Loc.t -> unit;
  on_tx_begin : Nvmir.Loc.t -> unit;
  on_tx_end : Nvmir.Loc.t -> unit;
  on_epoch_begin : Nvmir.Loc.t -> unit;
  on_epoch_end : Nvmir.Loc.t -> unit;
  on_strand_begin : int -> Nvmir.Loc.t -> unit;
  on_strand_end : int -> Nvmir.Loc.t -> unit;
}

let null_listener =
  {
    on_alloc = (fun ~obj_id:_ ~persistent:_ ~size:_ -> ());
    on_write = (fun _ _ -> ());
    on_read = (fun _ _ -> ());
    on_flush = (fun ~obj_id:_ ~first_slot:_ ~nslots:_ ~dirty:_ _ -> ());
    on_fence = (fun _ -> ());
    on_tx_begin = (fun _ -> ());
    on_tx_end = (fun _ -> ());
    on_epoch_begin = (fun _ -> ());
    on_epoch_end = (fun _ -> ());
    on_strand_begin = (fun _ _ -> ());
    on_strand_end = (fun _ _ -> ());
  }

type stats = {
  mutable stores : int;
  mutable loads : int;
  mutable flushes : int;
  mutable flushed_lines : int;
  mutable redundant_flushes : int; (* flushes of fully-clean ranges *)
  mutable fences : int;
  mutable txs : int;
  mutable log_copies : int;
  mutable cycles : int; (* cost-model time *)
  mutable nvm_writes : int; (* slots actually written back *)
}

let fresh_stats () =
  {
    stores = 0;
    loads = 0;
    flushes = 0;
    flushed_lines = 0;
    redundant_flushes = 0;
    fences = 0;
    txs = 0;
    log_copies = 0;
    cycles = 0;
    nvm_writes = 0;
  }

type undo_entry = { u_obj : int; u_slot : int; u_value : Value.t }
type tx = { tx_id : int; mutable undo : undo_entry list }

type t = {
  config : Config.t;
  objects : (int, obj) Hashtbl.t;
  first_id : int;
  id_limit : int option; (* exclusive upper bound on object ids, if any *)
  mutable next_id : int;
  mutable listeners : listener list;
  stats : stats;
  mutable tx_stack : tx list;
  mutable next_tx : int;
  mutable rng : int; (* deterministic LCG state for eviction modeling *)
  mutable in_commit : bool;
      (* commit-internal write-backs are framework machinery, not program
         flushes; listeners are not notified of them *)
  mutable pending_drain : (int * int) list;
      (* (obj, slot) pairs in Flushed state, drained at the next fence;
         keeps fences O(outstanding flushes) instead of O(heap) *)
}

let create ?(config = Config.default) ?(first_obj_id = 0) ?obj_id_limit () =
  if first_obj_id < 0 then invalid_arg "Pmem.create: negative first_obj_id";
  (match obj_id_limit with
  | Some lim when lim <= first_obj_id ->
    invalid_arg
      (Fmt.str "Pmem.create: obj_id_limit %d <= first_obj_id %d" lim
         first_obj_id)
  | _ -> ());
  {
    config;
    objects = Hashtbl.create 64;
    first_id = first_obj_id;
    id_limit = obj_id_limit;
    next_id = first_obj_id;
    listeners = [];
    stats = fresh_stats ();
    tx_stack = [];
    next_tx = 0;
    rng = config.Config.eviction_seed;
    in_commit = false;
    pending_drain = [];
  }

let stats t = t.stats
let config t = t.config
let add_listener t l = t.listeners <- l :: t.listeners
let remove_listeners t = t.listeners <- []
let notify t f = List.iter f t.listeners
let charge t c = t.stats.cycles <- t.stats.cycles + c

let obj t id =
  match Hashtbl.find_opt t.objects id with
  | Some o -> o
  | None -> invalid_arg (Fmt.str "Pmem: unknown object %d" id)

let obj_size t id = Array.length (obj t id).cache
let is_persistent t id = (obj t id).persistent
let obj_ty t id = (obj t id).ty
let obj_name t id = (obj t id).name
let object_count t = Hashtbl.length t.objects

let live_objects t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.objects [] |> List.sort Int.compare

let id_range t = (t.first_id, t.id_limit)

let alloc t ?name ~tenv ~persistent ty =
  let size = max 1 (Nvmir.Ty.size_slots tenv ty) in
  let id = t.next_id in
  (match t.id_limit with
  | Some lim when id >= lim ->
    invalid_arg
      (Fmt.str
         "Pmem.alloc: object-id window [%d, %d) exhausted; widen the \
          client's id range"
         t.first_id lim)
  | _ -> ());
  t.next_id <- id + 1;
  let o =
    {
      id;
      ty;
      persistent;
      name;
      cache = Array.make size Value.Vnull;
      nvm = Array.make size Value.Vnull;
      state = Array.make size Clean;
      corrupt = Array.make size false;
    }
  in
  Hashtbl.replace t.objects id o;
  notify t (fun l -> l.on_alloc ~obj_id:id ~persistent ~size);
  id

(* Deterministic LCG used only for optional eviction modeling. *)
let next_rand t =
  t.rng <- ((t.rng * 1103515245) + 12345) land 0x3FFFFFFF;
  t.rng

let line_of t slot = slot / t.config.Config.cacheline_slots

let evict_line t (o : obj) line =
  let lo = line * t.config.Config.cacheline_slots in
  let hi = min (Array.length o.cache) (lo + t.config.Config.cacheline_slots) in
  for s = lo to hi - 1 do
    if o.state.(s) <> Clean then begin
      o.nvm.(s) <- o.cache.(s);
      o.state.(s) <- Clean;
      t.stats.nvm_writes <- t.stats.nvm_writes + 1
    end
  done

(* Spontaneous eviction: with eviction modeling on, roughly one write in
   sixteen evicts a pseudo-random dirty line of the written object —
   the "unpredictable cache evictions" of §2.1. *)
let maybe_evict t (o : obj) =
  if t.config.Config.track_eviction && next_rand t land 0xF = 0 then begin
    let nlines = 1 + ((Array.length o.cache - 1) / t.config.Config.cacheline_slots) in
    evict_line t o (next_rand t mod nlines)
  end

let write t ?(loc = Nvmir.Loc.none) { obj_id; slot } v =
  let o = obj t obj_id in
  if slot < 0 || slot >= Array.length o.cache then
    invalid_arg (Fmt.str "Pmem.write: slot %d out of bounds for obj%d" slot obj_id);
  (* undo-log: first write to a slot inside a transaction snapshots the
     durable value, so a crash before commit rolls back *)
  (match t.tx_stack with
  | tx :: _ when o.persistent ->
    if
      not
        (List.exists
           (fun u -> u.u_obj = obj_id && u.u_slot = slot)
           tx.undo)
    then tx.undo <- { u_obj = obj_id; u_slot = slot; u_value = o.nvm.(slot) } :: tx.undo
  | _ -> ());
  o.cache.(slot) <- v;
  o.corrupt.(slot) <- false;
  if o.persistent then o.state.(slot) <- Dirty;
  t.stats.stores <- t.stats.stores + 1;
  charge t t.config.Config.cost.Config.store_cost;
  if o.persistent then begin
    notify t (fun l -> l.on_write { obj_id; slot } loc);
    maybe_evict t o
  end

let read t ?(loc = Nvmir.Loc.none) { obj_id; slot } =
  let o = obj t obj_id in
  if slot < 0 || slot >= Array.length o.cache then
    invalid_arg (Fmt.str "Pmem.read: slot %d out of bounds for obj%d" slot obj_id);
  t.stats.loads <- t.stats.loads + 1;
  charge t t.config.Config.cost.Config.load_cost;
  if o.persistent then notify t (fun l -> l.on_read { obj_id; slot } loc);
  o.cache.(slot)

(* Flush a slot range (line-granular): Dirty slots of every touched
   cache line become Flushed. Flushing clean data still costs a
   write-back command — that is precisely how the performance bugs of
   Table 5 hurt. *)
let flush_range t ?(loc = Nvmir.Loc.none) ~obj_id ~first_slot ~nslots () =
  let o = obj t obj_id in
  if not o.persistent then ()
  else begin
    let size = Array.length o.cache in
    let first_slot = max 0 first_slot in
    let last = min (size - 1) (first_slot + max 1 nslots - 1) in
    let first_line = line_of t first_slot and last_line = line_of t last in
    let any_dirty = ref false in
    for line = first_line to last_line do
      let lo = line * t.config.Config.cacheline_slots in
      let hi = min size (lo + t.config.Config.cacheline_slots) in
      for s = lo to hi - 1 do
        if o.state.(s) = Dirty then begin
          o.state.(s) <- Flushed;
          t.pending_drain <- (obj_id, s) :: t.pending_drain;
          any_dirty := true
        end
      done;
      t.stats.flushed_lines <- t.stats.flushed_lines + 1;
      charge t t.config.Config.cost.Config.flush_cost
    done;
    t.stats.flushes <- t.stats.flushes + 1;
    if (not !any_dirty) && not t.in_commit then
      t.stats.redundant_flushes <- t.stats.redundant_flushes + 1;
    if not t.in_commit then
      notify t (fun l ->
          l.on_flush ~obj_id ~first_slot
            ~nslots:(last - first_slot + 1)
            ~dirty:!any_dirty loc)
  end

let flush_obj t ?loc obj_id =
  flush_range t ?loc ~obj_id ~first_slot:0 ~nslots:(obj_size t obj_id) ()

let fence t ?(loc = Nvmir.Loc.none) () =
  List.iter
    (fun (obj_id, s) ->
      let o = obj t obj_id in
      (* a slot may have been re-dirtied since the flush; only drain
         slots still in Flushed state *)
      if o.state.(s) = Flushed then begin
        o.nvm.(s) <- o.cache.(s);
        o.state.(s) <- Clean;
        t.stats.nvm_writes <- t.stats.nvm_writes + 1
      end)
    t.pending_drain;
  t.pending_drain <- [];
  t.stats.fences <- t.stats.fences + 1;
  charge t t.config.Config.cost.Config.fence_cost;
  notify t (fun l -> l.on_fence loc)

let persist_range t ?loc ~obj_id ~first_slot ~nslots () =
  flush_range t ?loc ~obj_id ~first_slot ~nslots ();
  fence t ?loc ()

let persist_obj t ?loc obj_id =
  flush_obj t ?loc obj_id;
  fence t ?loc ()

(* Transactions: undo logging with durable commit. [tx_add] explicitly
   snapshots an object range (the TX_ADD of PMDK); writes inside a
   transaction are also auto-logged on first touch so rollback is always
   possible. Commit flushes everything the transaction touched, fences,
   then truncates the log. *)
let tx_begin t ?(loc = Nvmir.Loc.none) () =
  let tx = { tx_id = t.next_tx; undo = [] } in
  t.next_tx <- t.next_tx + 1;
  t.tx_stack <- tx :: t.tx_stack;
  t.stats.txs <- t.stats.txs + 1;
  charge t t.config.Config.cost.Config.tx_overhead;
  notify t (fun l -> l.on_tx_begin loc)

let tx_add t ?(loc = Nvmir.Loc.none) ~obj_id ~first_slot ~nslots () =
  ignore loc;
  match t.tx_stack with
  | [] -> invalid_arg "Pmem.tx_add: no open transaction"
  | tx :: _ ->
    let o = obj t obj_id in
    let last = min (Array.length o.cache - 1) (first_slot + max 1 nslots - 1) in
    for s = first_slot to last do
      if not (List.exists (fun u -> u.u_obj = obj_id && u.u_slot = s) tx.undo)
      then tx.undo <- { u_obj = obj_id; u_slot = s; u_value = o.nvm.(s) } :: tx.undo
    done;
    t.stats.log_copies <- t.stats.log_copies + 1;
    charge t t.config.Config.cost.Config.log_cost

let tx_end t ?(loc = Nvmir.Loc.none) () =
  match t.tx_stack with
  | [] -> invalid_arg "Pmem.tx_end: no open transaction"
  | tx :: rest ->
    (* commit: make every logged slot durable *)
    let by_obj = Hashtbl.create 8 in
    List.iter
      (fun u ->
        let old = Option.value ~default:[] (Hashtbl.find_opt by_obj u.u_obj) in
        Hashtbl.replace by_obj u.u_obj (u.u_slot :: old))
      tx.undo;
    t.in_commit <- true;
    Hashtbl.iter
      (fun obj_id slots ->
        let lo = List.fold_left min max_int slots
        and hi = List.fold_left max 0 slots in
        flush_range t ~loc ~obj_id ~first_slot:lo ~nslots:(hi - lo + 1) ())
      by_obj;
    t.in_commit <- false;
    fence t ~loc ();
    charge t t.config.Config.cost.Config.tx_overhead;
    t.tx_stack <- rest;
    (* a nested transaction's log folds into its parent so an aborted
       outer transaction can still roll everything back *)
    (match rest with
    | parent :: _ ->
      List.iter
        (fun u ->
          if
            not
              (List.exists
                 (fun p -> p.u_obj = u.u_obj && p.u_slot = u.u_slot)
                 parent.undo)
          then parent.undo <- u :: parent.undo)
        tx.undo
    | [] -> ());
    notify t (fun l -> l.on_tx_end loc)

let in_tx t = t.tx_stack <> []

(* Annotations: epoch and strand markers are visible to listeners but do
   not change memory state by themselves. *)
let epoch_begin t ?(loc = Nvmir.Loc.none) () =
  notify t (fun l -> l.on_epoch_begin loc)

let epoch_end t ?(loc = Nvmir.Loc.none) () =
  notify t (fun l -> l.on_epoch_end loc)

let strand_begin t ?(loc = Nvmir.Loc.none) n =
  notify t (fun l -> l.on_strand_begin n loc)

let strand_end t ?(loc = Nvmir.Loc.none) n =
  notify t (fun l -> l.on_strand_end n loc)

(* ------------------------------------------------------------------ *)
(* Crash semantics *)

(* The value a slot would hold after a crash right now: the durable
   (fenced) value, with open transactions rolled back via their undo
   logs. *)
let durable_value t { obj_id; slot } =
  let o = obj t obj_id in
  let rolled_back =
    List.fold_left
      (fun acc tx ->
        match acc with
        | Some _ -> acc
        | None ->
          List.find_map
            (fun u ->
              if u.u_obj = obj_id && u.u_slot = slot then Some u.u_value
              else None)
            tx.undo)
      None t.tx_stack
  in
  match rolled_back with Some v -> v | None -> o.nvm.(slot)

let cached_value t { obj_id; slot } = (obj t obj_id).cache.(slot)

let slot_state t { obj_id; slot } = (obj t obj_id).state.(slot)

(* Snapshot of the whole durable state: obj id -> values. *)
let durable_snapshot t =
  let snap = Hashtbl.create (Hashtbl.length t.objects) in
  Hashtbl.iter
    (fun id o ->
      if o.persistent then
        Hashtbl.replace snap id
          (Array.init (Array.length o.nvm) (fun slot ->
               durable_value t { obj_id = id; slot })))
    t.objects;
  snap

(* ------------------------------------------------------------------ *)
(* Crash-image enumeration support ([Crash_space]): which cache lines
   are still in flight, and what durable image results when an arbitrary
   subset of them reaches NVM. Lines are (obj_id, line index) pairs;
   line width comes from the configuration. *)

let lines_matching t pred =
  Hashtbl.fold
    (fun id o acc ->
      if not o.persistent then acc
      else begin
        let lines = ref [] in
        Array.iteri
          (fun s st ->
            if pred st then begin
              let line = line_of t s in
              if not (List.mem line !lines) then lines := line :: !lines
            end)
          o.state;
        List.fold_left (fun acc l -> (id, l) :: acc) acc !lines
      end)
    t.objects []
  |> List.sort compare

let dirty_lines t = lines_matching t (fun st -> st = Dirty)
let unfenced_lines t = lines_matching t (fun st -> st = Flushed)
let inflight_lines t = lines_matching t (fun st -> st <> Clean)

(* The durable image if exactly the [persist] lines were written back
   before the crash: chosen lines carry their cached slots, everything
   else keeps its fenced value, and recovery rolls open transactions
   back via their undo logs (outermost first, so the innermost snapshot
   wins — the same resolution order as [durable_value]). The empty
   subset reproduces [durable_snapshot] exactly. *)
let materialize t ~persist =
  let snap = Hashtbl.create (Hashtbl.length t.objects) in
  Hashtbl.iter
    (fun id o ->
      if o.persistent then begin
        let arr = Array.copy o.nvm in
        List.iter
          (fun (obj_id, line) ->
            if obj_id = id then begin
              let lo = line * t.config.Config.cacheline_slots in
              let hi =
                min (Array.length o.cache) (lo + t.config.Config.cacheline_slots)
              in
              for s = lo to hi - 1 do
                arr.(s) <- o.cache.(s)
              done
            end)
          persist;
        List.iter
          (fun tx ->
            List.iter
              (fun u -> if u.u_obj = id then arr.(u.u_slot) <- u.u_value)
              tx.undo)
          (List.rev t.tx_stack);
        Hashtbl.replace snap id arr
      end)
    t.objects;
  snap

(* How many slots are not yet durable (differ between cache and the
   durable view)? Zero means a crash right now loses nothing. *)
let volatile_slot_count t =
  Hashtbl.fold
    (fun id o acc ->
      if not o.persistent then acc
      else
        acc
        + Array.length
            (Array.of_list
               (List.filter
                  (fun slot ->
                    not
                      (Value.equal o.cache.(slot)
                         (durable_value t { obj_id = id; slot })))
                  (List.init (Array.length o.cache) Fun.id))))
    t.objects 0

(* ------------------------------------------------------------------ *)
(* Media corruption (recovery-tier model).

   A crash image enumerated by [Crash_space] says which in-flight lines
   reached NVM, but media may additionally tear or flip the bytes of any
   line that was in flight: the device was mid-write-back when power
   failed. [corrupt_image] applies that adversarial model to a
   materialized image, deterministically from a seed; [restore] then
   reconstitutes a fresh heap from the (possibly corrupted) image with
   per-slot corrupt flags set, so recovery code runs against exactly the
   state a real restart would see. CRC primitives implement the
   verified-storage axiom: a matching CRC over uncorrupted slots proves
   the data is the data that was written. *)

type corruption_kind =
  | Torn_line  (** each slot independently landed old or new *)
  | Bit_flip  (** one slot's value perturbed *)
  | Stale_line
      (** the whole line silently reverted to its pre-crash durable
          content — the stale-CRC case when the line holds a checksum *)

let corruption_kind_name = function
  | Torn_line -> "torn-line"
  | Bit_flip -> "bit-flip"
  | Stale_line -> "stale-line"

type corruption = {
  c_addr : addr;
  c_kind : corruption_kind;
  c_was : Value.t; (* the value the image held before corruption *)
  c_now : Value.t;
}

let pp_corruption ppf c =
  Fmt.pf ppf "%s obj%d.%d: %a -> %a"
    (corruption_kind_name c.c_kind)
    c.c_addr.obj_id c.c_addr.slot Value.pp c.c_was Value.pp c.c_now

(* One LCG bit-stream per image, fully determined by the seed. *)
let corrupt_image t ~seed image =
  let rng = ref ((seed lxor 0x2545F49) land 0x3FFFFFFF) in
  let next () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng
  in
  let flip_value r v =
    match (v : Value.t) with
    | Value.Vint n -> Value.Vint (n lxor (1 lsl (r mod 30)))
    | Value.Vbool b -> Value.Vbool (not b)
    | Value.Vref _ -> Value.Vnull (* a torn pointer reads as garbage *)
    | Value.Vnull -> Value.Vint (1 lsl (r mod 30))
  in
  List.concat_map
    (fun (obj_id, line) ->
      match Hashtbl.find_opt image obj_id with
      | None -> []
      | Some arr ->
        let o = obj t obj_id in
        let lo = line * t.config.Config.cacheline_slots in
        let hi = min (Array.length arr) (lo + t.config.Config.cacheline_slots) in
        let kind =
          match next () mod 3 with
          | 0 -> Torn_line
          | 1 -> Bit_flip
          | _ -> Stale_line
        in
        let corrupt_slot s now =
          let was = arr.(s) in
          if Value.equal was now then None
          else begin
            arr.(s) <- now;
            Some { c_addr = { obj_id; slot = s }; c_kind = kind;
                   c_was = was; c_now = now }
          end
        in
        let slots = List.init (hi - lo) (fun d -> lo + d) in
        (match kind with
        | Torn_line ->
          List.filter_map
            (fun s ->
              let v = if next () land 1 = 0 then o.nvm.(s) else o.cache.(s) in
              corrupt_slot s v)
            slots
        | Bit_flip ->
          let s = lo + (next () mod max 1 (hi - lo)) in
          Option.to_list (corrupt_slot s (flip_value (next ()) arr.(s)))
        | Stale_line -> List.filter_map (fun s -> corrupt_slot s o.nvm.(s)) slots))
    (inflight_lines t)

(* Reconstitute a post-crash heap from a materialized (and possibly
   corrupted) image: values are durable and clean, corrupt flags mark
   the slots [corrupt_image] changed. [from] supplies object metadata
   (types, names); only the image's objects — the persistent ones — are
   restored, so recovery allocates its volatile state afresh. *)
let restore ?config ~from ~image ~corrupt () =
  let config = match config with Some c -> c | None -> from.config in
  let t = create ~config () in
  Hashtbl.iter
    (fun id arr ->
      let o = obj from id in
      let size = Array.length arr in
      Hashtbl.replace t.objects id
        {
          id;
          ty = o.ty;
          persistent = true;
          name = o.name;
          cache = Array.copy arr;
          nvm = Array.copy arr;
          state = Array.make size Clean;
          corrupt = Array.make size false;
        };
      if id >= t.next_id then t.next_id <- id + 1)
    image;
  List.iter
    (fun { obj_id; slot } ->
      match Hashtbl.find_opt t.objects obj_id with
      | Some o when slot >= 0 && slot < Array.length o.corrupt ->
        o.corrupt.(slot) <- true
      | _ -> ())
    corrupt;
  t

let is_corrupt t { obj_id; slot } =
  let o = obj t obj_id in
  slot >= 0 && slot < Array.length o.corrupt && o.corrupt.(slot)

let corrupt_slot_count t =
  Hashtbl.fold
    (fun _ o acc ->
      acc + Array.fold_left (fun n c -> if c then n + 1 else n) 0 o.corrupt)
    t.objects 0

(* ------------------------------------------------------------------ *)
(* CRC primitives. The checksum is a deterministic FNV-style fold over
   the cached values of a slot range. [crc_check_range] implements the
   CRC-validates-data axiom exactly: it refuses (returns false) whenever
   any covered slot is corrupt-flagged — even on a hash collision — so a
   guarded read can never accept corrupted data as valid. *)

let hash_value acc v =
  let mix acc k = ((acc lxor (k land 0x3FFFFFFF)) * 16777619) land 0x3FFFFFFF in
  match (v : Value.t) with
  | Value.Vnull -> mix acc 3
  | Value.Vbool b -> mix (mix acc 5) (if b then 1 else 0)
  | Value.Vint n -> mix (mix acc 7) n
  | Value.Vref { obj; off } -> mix (mix (mix acc 11) obj) off

let clamp_range (o : obj) first_slot nslots =
  let size = Array.length o.cache in
  let first = max 0 first_slot in
  let last = min (size - 1) (first + max 1 nslots - 1) in
  (first, last)

let crc_of_range t ~obj_id ~first_slot ~nslots =
  let o = obj t obj_id in
  let first, last = clamp_range o first_slot nslots in
  let acc = ref 0x01C9DC5 in
  for s = first to last do
    acc := hash_value !acc o.cache.(s)
  done;
  !acc

let range_corrupt t ~obj_id ~first_slot ~nslots =
  let o = obj t obj_id in
  let first, last = clamp_range o first_slot nslots in
  let rec go s = s <= last && (o.corrupt.(s) || go (s + 1)) in
  go first

let crc_check_range t ~obj_id ~first_slot ~nslots ~crc =
  (not (range_corrupt t ~obj_id ~first_slot ~nslots))
  &&
  match (crc : Value.t) with
  | Value.Vint n -> n = crc_of_range t ~obj_id ~first_slot ~nslots
  | _ -> false

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "stores=%d loads=%d flushes=%d (lines=%d, redundant=%d) fences=%d txs=%d \
     logs=%d nvm_writes=%d cycles=%d"
    s.stores s.loads s.flushes s.flushed_lines s.redundant_flushes s.fences
    s.txs s.log_copies s.nvm_writes s.cycles
