(* The dynamic checker (§4.4): online analysis of epoch- and strand-
   annotated NVM programs.

   It attaches to a [Pmem.t] as a listener and

   - tracks writes/reads to persistent slots inside annotated regions in
     a shadow segment and reports WAW and RAW races between concurrent
     strands (happens-before detection; persist barriers are the
     synchronization points);
   - reports flushes that wrote back no dirty data: never-written ranges
     as writing back unmodified data, ranges re-flushed inside a
     transaction as persisting the same object twice, and other clean
     re-flushes as redundant write-backs;
   - at each epoch boundary, reports writes of the closing epoch that
     are still volatile (dirty, un-fenced) — the runtime complement of
     the static unflushed-write rule.

   Only accesses inside annotated regions are tracked (the paper's key
   overhead reduction over vanilla ThreadSanitizer), so cost scales with
   the persistent write/read ratio of the workload.

   Concurrency: all per-client state — the open region, the epoch write
   log, the transaction depth, the warning buffer, the race counters —
   lives in [thread_state], one per client. A listener obtained through
   {!attach_client} is bound to its client's state, so listeners firing
   on different domains never touch each other's state; the only shared
   structures are the lock-striped shadow segment, the atomic barrier
   counter, and the atomic stored-warning counter that enforces the
   global cap. Warnings are aggregated (and deterministically sorted) at
   summary time. The historical [set_thread]/[attach] interface remains
   for single-domain interleaved replay. *)

type region = No_region | In_epoch | In_strand of int

type thread_state = {
  thread_id : int;
  mutable region : region;
  mutable begin_fence : int; (* barrier count when the region began *)
  mutable epoch_writes : (Pmem.addr * Nvmir.Loc.t) list;
      (* writes of the open epoch, with their source locations *)
  mutable tx_depth : int;
      (* transactions are per-client: a client inside its own
         transaction must not change how another client's flushes are
         classified *)
  mutable warnings : Analysis.Warning.t list; (* newest first *)
  mutable warning_count : int; (* length of [warnings], kept explicit *)
  mutable dropped : int;
  mutable waw : int;
  mutable raw : int;
  mutable unflushed : int;
  mutable redundant : int;
  mutable pmem : Pmem.t option;
      (* the heap this client's listener is bound to, for epoch-end
         volatility queries; [None] falls back to the checker-wide
         attachment *)
}

type t = {
  model : Analysis.Model.t;
  shadow : Shadow.t;
  max_warnings : int;
  threads : (int, thread_state) Hashtbl.t;
  threads_lock : Mutex.t; (* guards [threads]; state creation only *)
  mutable current : thread_state; (* single-domain interleaved replay *)
  fence_count : int Atomic.t; (* global persist-barrier counter *)
  stored : int Atomic.t; (* warnings stored across all threads *)
  mutable default_pmem : Pmem.t option;
  ranges_lock : Mutex.t; (* guards [ranges] *)
  mutable ranges : (int * int option) list;
      (* object-id windows of every attached heap; overlapping windows
         would silently alias shadow-segment keys across clients, so
         attachment rejects them up front *)
}

let fresh_thread id =
  {
    thread_id = id;
    region = No_region;
    begin_fence = 0;
    epoch_writes = [];
    tx_depth = 0;
    warnings = [];
    warning_count = 0;
    dropped = 0;
    waw = 0;
    raw = 0;
    unflushed = 0;
    redundant = 0;
    pmem = None;
  }

let create ?(max_warnings = 10_000) ?shards ~model () =
  let t0 = fresh_thread 0 in
  let threads = Hashtbl.create 8 in
  Hashtbl.replace threads 0 t0;
  {
    model;
    shadow = Shadow.create ?shards ();
    max_warnings;
    threads;
    threads_lock = Mutex.create ();
    current = t0;
    fence_count = Atomic.make 0;
    stored = Atomic.make 0;
    default_pmem = None;
    ranges_lock = Mutex.create ();
    ranges = [];
  }

let thread t id =
  Mutex.lock t.threads_lock;
  let ts =
    match Hashtbl.find_opt t.threads id with
    | Some ts -> ts
    | None ->
      let ts = fresh_thread id in
      Hashtbl.replace t.threads id ts;
      ts
  in
  Mutex.unlock t.threads_lock;
  ts

(* Interleaved multi-client replay switches the active thread before
   each operation; single-threaded IR programs never call this. *)
let set_thread t id =
  if t.current.thread_id <> id then t.current <- thread t id

let thread_states t =
  Mutex.lock t.threads_lock;
  let ts = Hashtbl.fold (fun _ ts acc -> ts :: acc) t.threads [] in
  Mutex.unlock t.threads_lock;
  List.sort (fun a b -> Int.compare a.thread_id b.thread_id) ts

(* Aggregated warnings, deterministically ordered (location, then rule,
   then message) so concurrent executions report byte-for-byte the same
   output as the sequential engine. *)
let warnings t =
  List.concat_map (fun ts -> List.rev ts.warnings) (thread_states t)
  |> List.stable_sort (fun (a : Analysis.Warning.t) (b : Analysis.Warning.t) ->
         match Nvmir.Loc.compare a.Analysis.Warning.loc b.Analysis.Warning.loc with
         | 0 -> (
           match
             String.compare
               (Analysis.Warning.rule_name a.Analysis.Warning.rule)
               (Analysis.Warning.rule_name b.Analysis.Warning.rule)
           with
           | 0 ->
             String.compare a.Analysis.Warning.message b.Analysis.Warning.message
           | c -> c)
         | c -> c)

let shadow t = t.shadow

(* The cap is global across threads: claim a stored slot with one
   fetch-and-add (O(1), where the old implementation recomputed
   [List.length] of the buffer on every warning) and roll back when the
   cap was already reached. *)
let strand_of_region ts =
  match ts.region with
  | In_strand n -> Some n
  | In_epoch -> Some (-1 - ts.thread_id) (* epochs race only across threads *)
  | No_region -> None

(* [transition] describes the shadow-state step that tripped the check;
   it is only forced when witness capture is enabled, so the disabled
   path allocates nothing beyond the warning itself. *)
let add_warning t ts ?transition ~rule ~loc ~fname message =
  if Atomic.fetch_and_add t.stored 1 >= t.max_warnings then begin
    Atomic.decr t.stored;
    ts.dropped <- ts.dropped + 1
  end
  else begin
    let witness =
      if Analysis.Witness.enabled () then
        Some
          (Analysis.Witness.Dynamic
             {
               d_transition =
                 (match transition with Some f -> f () | None -> message);
               d_strand =
                 (match strand_of_region ts with
                 | Some s -> s
                 | None -> ts.thread_id);
               d_fences = Atomic.get t.fence_count;
             })
      else None
    in
    ts.warnings <-
      Analysis.Warning.make ~origin:Analysis.Warning.Dynamic ?witness ~rule
        ~model:t.model ~loc ~fname message
      :: ts.warnings;
    ts.warning_count <- ts.warning_count + 1
  end

let m_waw_checks =
  Obs.Metrics.counter "dynamic.waw_checks"
    ~desc:"tracked writes checked for WAW/RAW conflicts"

let m_raw_checks =
  Obs.Metrics.counter "dynamic.raw_checks"
    ~desc:"tracked reads checked for RAW conflicts"

let on_write t ts addr loc =
  match strand_of_region ts with
  | None -> ()
  | Some strand ->
    Obs.Metrics.incr m_waw_checks;
    (* epoch-boundary volatility reporting only applies to epochs;
       strand regions defer barriers by design *)
    if ts.region = In_epoch then
      ts.epoch_writes <- (addr, loc) :: ts.epoch_writes;
    let access =
      { Shadow.strand; fence_at = Atomic.get t.fence_count; loc }
    in
    let conflicts =
      Shadow.record_write t.shadow ~obj_id:addr.Pmem.obj_id
        ~slot:addr.Pmem.slot ~begin_fence:ts.begin_fence access
    in
    List.iter
      (fun c ->
        match c with
        | `Waw (w : Shadow.access) ->
          ts.waw <- ts.waw + 1;
          add_warning t ts
            ~transition:(fun () ->
              Fmt.str
                "shadow obj%d[%d]: written(strand %d, fence %d) -> \
                 written(strand %d, fence %d) with no ordering barrier"
                addr.Pmem.obj_id addr.Pmem.slot w.Shadow.strand
                w.Shadow.fence_at strand
                (Atomic.get t.fence_count))
            ~rule:Analysis.Warning.Strand_dependence ~loc
            ~fname:"<runtime>"
            (Fmt.str
               "WAW race: strands %d and %d both write obj%d[%d] without an \
                ordering barrier (previous write at %a)"
               w.Shadow.strand strand addr.Pmem.obj_id addr.Pmem.slot
               Nvmir.Loc.pp w.Shadow.loc)
        | `Raw (r : Shadow.access) ->
          ts.raw <- ts.raw + 1;
          add_warning t ts
            ~transition:(fun () ->
              Fmt.str
                "shadow obj%d[%d]: read(strand %d, fence %d) -> \
                 written(strand %d, fence %d) while the read is live"
                addr.Pmem.obj_id addr.Pmem.slot r.Shadow.strand
                r.Shadow.fence_at strand
                (Atomic.get t.fence_count))
            ~rule:Analysis.Warning.Strand_dependence ~loc
            ~fname:"<runtime>"
            (Fmt.str
               "RAW race: strand %d reads obj%d[%d] concurrently with strand \
                %d's write (read at %a)"
               r.Shadow.strand addr.Pmem.obj_id addr.Pmem.slot strand
               Nvmir.Loc.pp r.Shadow.loc))
      conflicts

let on_read t ts addr loc =
  match strand_of_region ts with
  | None -> ()
  | Some strand -> (
    Obs.Metrics.incr m_raw_checks;
    let access =
      { Shadow.strand; fence_at = Atomic.get t.fence_count; loc }
    in
    match
      Shadow.record_read t.shadow ~obj_id:addr.Pmem.obj_id ~slot:addr.Pmem.slot
        ~begin_fence:ts.begin_fence access
    with
    | Some (`Raw w) ->
      ts.raw <- ts.raw + 1;
      add_warning t ts
        ~transition:(fun () ->
          Fmt.str
            "shadow obj%d[%d]: written(strand %d, fence %d) -> read(strand \
             %d, fence %d) before any ordering barrier"
            addr.Pmem.obj_id addr.Pmem.slot w.Shadow.strand w.Shadow.fence_at
            strand
            (Atomic.get t.fence_count))
        ~rule:Analysis.Warning.Strand_dependence ~loc
        ~fname:"<runtime>"
        (Fmt.str
           "RAW race: read of obj%d[%d] is concurrent with strand %d's write \
            at %a"
           addr.Pmem.obj_id addr.Pmem.slot w.Shadow.strand Nvmir.Loc.pp
           w.Shadow.loc)
    | None -> ())

(* A flush that found no dirty slot is redundant work: classify it by
   whether the range was ever written inside a tracked region (multiple
   flushes / persist-same-in-tx) or never written at all (writing back
   unmodified data). *)
let on_flush t ts ~obj_id ~first_slot ~nslots ~dirty loc =
  match strand_of_region ts with
  | None -> ()
  | Some _ ->
    if not dirty then begin
      ts.redundant <- ts.redundant + 1;
      let rec ever i =
        i < nslots
        && (Shadow.ever_written t.shadow ~obj_id ~slot:(first_slot + i)
           || ever (i + 1))
      in
      if not (ever 0) then
        add_warning t ts ~rule:Analysis.Warning.Flush_unmodified ~loc
          ~fname:"<runtime>"
          (Fmt.str
             "flush of obj%d[%d..%d] writes back data that was never modified"
             obj_id first_slot
             (first_slot + nslots - 1))
      else if ts.tx_depth > 0 then
        add_warning t ts ~rule:Analysis.Warning.Persist_same_object_in_tx ~loc
          ~fname:"<runtime>"
          (Fmt.str
             "obj%d[%d..%d] persisted again within the same transaction with \
              no intervening modification"
             obj_id first_slot
             (first_slot + nslots - 1))
      else
        add_warning t ts ~rule:Analysis.Warning.Multiple_flushes ~loc
          ~fname:"<runtime>"
          (Fmt.str
             "redundant write-back of obj%d[%d..%d]: already flushed and \
              unmodified since"
             obj_id first_slot
             (first_slot + nslots - 1))
    end

let on_fence t _ts _loc = Atomic.incr t.fence_count

let on_strand_begin t ts n _loc =
  ts.region <- In_strand n;
  ts.begin_fence <- Atomic.get t.fence_count

let on_strand_end _t ts n _loc =
  ignore n;
  ts.region <- No_region

let flush_epoch_report t ts _loc =
  match (ts.pmem, t.default_pmem) with
  | None, None -> ts.epoch_writes <- []
  | Some pm, _ | None, Some pm ->
    (* epochs are short (a handful of writes), so iterate directly *)
    let still_volatile =
      List.filter (fun (addr, _) -> Pmem.slot_state pm addr <> Pmem.Clean)
        ts.epoch_writes
    in
    List.iter
      (fun ((addr : Pmem.addr), wloc) ->
        ts.unflushed <- ts.unflushed + 1;
        add_warning t ts
          ~transition:(fun () ->
            Fmt.str
              "shadow obj%d[%d]: dirty when the epoch boundary closed (write \
               never reached NVM)"
              addr.Pmem.obj_id addr.Pmem.slot)
          ~rule:Analysis.Warning.Unflushed_write ~loc:wloc
          ~fname:"<runtime>"
          (Fmt.str
             "epoch ends while the write to obj%d[%d] is still volatile; a \
              crash here loses it"
             addr.Pmem.obj_id addr.Pmem.slot))
      still_volatile;
    ts.epoch_writes <- []

let on_epoch_begin t ts _loc =
  ts.region <- In_epoch;
  ts.epoch_writes <- [];
  ts.begin_fence <- Atomic.get t.fence_count

let on_epoch_end t ts loc =
  flush_epoch_report t ts loc;
  ts.region <- No_region

(* A listener whose events are all attributed to the client [state]:
   safe to fire from that client's domain concurrently with other
   clients' listeners. *)
let bound_listener t (state : thread_state) : Pmem.listener =
  {
    Pmem.null_listener with
    Pmem.on_write = (fun addr loc -> on_write t state addr loc);
    on_read = (fun addr loc -> on_read t state addr loc);
    on_flush =
      (fun ~obj_id ~first_slot ~nslots ~dirty loc ->
        on_flush t state ~obj_id ~first_slot ~nslots ~dirty loc);
    on_fence = (fun loc -> on_fence t state loc);
    on_tx_begin = (fun _ -> state.tx_depth <- state.tx_depth + 1);
    on_tx_end = (fun _ -> state.tx_depth <- max 0 (state.tx_depth - 1));
    on_strand_begin = (fun n loc -> on_strand_begin t state n loc);
    on_strand_end = (fun n loc -> on_strand_end t state n loc);
    on_epoch_begin = (fun loc -> on_epoch_begin t state loc);
    on_epoch_end = (fun loc -> on_epoch_end t state loc);
  }

(* The interleaved-replay listener: events go to whichever thread
   [set_thread] last selected. Single-domain use only. *)
let listener t : Pmem.listener =
  {
    Pmem.null_listener with
    Pmem.on_write = (fun addr loc -> on_write t t.current addr loc);
    on_read = (fun addr loc -> on_read t t.current addr loc);
    on_flush =
      (fun ~obj_id ~first_slot ~nslots ~dirty loc ->
        on_flush t t.current ~obj_id ~first_slot ~nslots ~dirty loc);
    on_fence = (fun loc -> on_fence t t.current loc);
    on_tx_begin =
      (fun _ ->
        let ts = t.current in
        ts.tx_depth <- ts.tx_depth + 1);
    on_tx_end =
      (fun _ ->
        let ts = t.current in
        ts.tx_depth <- max 0 (ts.tx_depth - 1));
    on_strand_begin = (fun n loc -> on_strand_begin t t.current n loc);
    on_strand_end = (fun n loc -> on_strand_end t t.current n loc);
    on_epoch_begin = (fun loc -> on_epoch_begin t t.current loc);
    on_epoch_end = (fun loc -> on_epoch_end t t.current loc);
  }

(* Shadow-segment keys are (obj_id, slot), so two heaps handing out the
   same object ids under one checker would silently merge their cells —
   a write by client A could mask, or race with, client B's. Reject the
   overlap at attachment time instead. Windows are [first, limit) with
   [None] = unbounded. *)
let register_range t pm =
  let first, limit = Pmem.id_range pm in
  let below a = function None -> true | Some lim -> a < lim in
  let overlaps (first', limit') = below first limit' && below first' limit in
  Mutex.lock t.ranges_lock;
  let clash = List.find_opt overlaps t.ranges in
  (match clash with
  | None -> t.ranges <- (first, limit) :: t.ranges
  | Some _ -> ());
  Mutex.unlock t.ranges_lock;
  match clash with
  | None -> ()
  | Some (first', limit') ->
    let pp_lim ppf = function
      | None -> Fmt.string ppf "inf"
      | Some l -> Fmt.int ppf l
    in
    invalid_arg
      (Fmt.str
         "Dynamic.attach: heap object-id window [%d, %a) overlaps an \
          already-attached heap's [%d, %a); give each client heap a \
          disjoint ?first_obj_id/?obj_id_limit window"
         first pp_lim limit first' pp_lim limit')

(* Attach the checker to a heap; subsequent operations are monitored,
   attributed via [set_thread]. *)
let attach t pm =
  register_range t pm;
  t.default_pmem <- Some pm;
  Pmem.add_listener pm (listener t)

(* Attach a client-bound listener: every event of [pm] is attributed to
   [thread], with no shared mutable attribution state — the heap may be
   driven from its own domain. *)
let attach_client t ~thread:id pm =
  register_range t pm;
  let ts = thread t id in
  ts.pmem <- Some pm;
  Pmem.add_listener pm (bound_listener t ts)

type summary = {
  waw : int;
  raw : int;
  unflushed : int;
  redundant : int;
  tracked_cells : int;
  warning_count : int;
  dropped : int;
}

let summary t =
  let states = thread_states t in
  let sum f = List.fold_left (fun acc ts -> acc + f ts) 0 states in
  let dropped = sum (fun ts -> ts.dropped) in
  {
    waw = sum (fun ts -> ts.waw);
    raw = sum (fun ts -> ts.raw);
    unflushed = sum (fun ts -> ts.unflushed);
    redundant = sum (fun ts -> ts.redundant);
    tracked_cells = Shadow.tracked_cells t.shadow;
    warning_count = sum (fun ts -> ts.warning_count) + dropped;
    dropped;
  }

let pp_summary ppf s =
  Fmt.pf ppf
    "WAW=%d RAW=%d unflushed-at-epoch-end=%d redundant-flushes=%d cells=%d \
     warnings=%d%s"
    s.waw s.raw s.unflushed s.redundant s.tracked_cells s.warning_count
    (if s.dropped > 0 then Fmt.str " (%d dropped)" s.dropped else "")
