(** The dynamic checker (§4.4): online analysis of epoch- and strand-
    annotated NVM programs. Attach it to a heap and run the program (via
    {!Interp} or native code using {!Pmem} directly); it tracks accesses
    inside annotated regions in a shadow segment, detects WAW/RAW races
    between strands, reports writes still volatile at epoch boundaries,
    and classifies redundant write-backs.

    The checker is safe to drive from several domains at once when each
    domain's heap is attached with {!attach_client}: all per-client
    state is private to that client, the shadow segment is lock-striped,
    and warnings are aggregated (deterministically ordered) at summary
    time. *)

type t

val create :
  ?max_warnings:int -> ?shards:int -> model:Analysis.Model.t -> unit -> t
(** [max_warnings] caps stored warnings (default 10000); occurrences
    beyond the cap are still counted in the summary. [shards] is the
    shadow-segment stripe count (see {!Shadow.create}). *)

val attach : t -> Pmem.t -> unit
(** Register the checker as a listener; subsequent operations are
    monitored and attributed to the thread selected by {!set_thread}.
    Single-domain (interleaved replay) use only.
    @raise Invalid_argument if the heap's object-id window (see
    {!Pmem.id_range}) overlaps an already-attached heap's — overlapping
    windows would silently alias shadow-segment keys across clients. *)

val attach_client : t -> thread:int -> Pmem.t -> unit
(** Register a listener bound to client [thread]: every event of this
    heap is attributed to that client, with no shared attribution state,
    so the heap may be driven from its own domain concurrently with
    other clients'.
    @raise Invalid_argument on an overlapping object-id window, as with
    {!attach}. *)

val set_thread : t -> int -> unit
(** Interleaved multi-client replay switches the active thread before
    each operation (only affects heaps attached with {!attach}). *)

val warnings : t -> Analysis.Warning.t list
(** All stored warnings, sorted by (location, rule, message) — the same
    order regardless of how client execution interleaved. *)

val shadow : t -> Shadow.t

type summary = {
  waw : int;
  raw : int;
  unflushed : int;  (** writes still volatile at an epoch boundary *)
  redundant : int;  (** flushes that wrote back nothing dirty *)
  tracked_cells : int;
  warning_count : int;
  dropped : int;
}

val summary : t -> summary
val pp_summary : summary Fmt.t
