(** Crash simulation: execute a program, injecting a crash after the
    k-th persistent-memory event for every k, and evaluate a consistency
    invariant over the durable state that survives. The oracle the test
    suite uses to show that model-violation bugs cause real
    inconsistency windows. *)

exception Crashed

type outcome = {
  crash_point : int;  (** event index the crash was injected after *)
  consistent : bool;
  detail : string;
}

type report = {
  outcomes : outcome list;
  total_points : int;
  violations : int;
}

val count_events :
  ?config:Config.t -> ?entry:string -> ?args:int list -> Nvmir.Prog.t -> int

val counting_listener : int ref -> Pmem.listener
(** Counts every persistent-memory event (write, flush, fence, tx
    begin/end) into the ref. *)

val crashing_listener : at:int -> int ref -> Pmem.listener
(** Like {!counting_listener} but raises {!Crashed} when the counter
    reaches [at]. Shared with {!Crash_space}. *)

val test :
  ?config:Config.t ->
  ?entry:string ->
  ?args:int list ->
  invariant:(Pmem.t -> (unit, string) result) ->
  Nvmir.Prog.t ->
  report
(** [invariant] receives the post-crash heap; read through
    {!Pmem.durable_value} to see exactly what survived. *)

(** {1 Invariant-free exploration} *)

type exposure = {
  point : int;
  at_risk_slots : int;
      (** durable now vs durable after a completed run *)
  volatile_slots : int;  (** cached vs durable at the crash point *)
}

type exposure_report = {
  points : exposure list;
  final_at_risk : int;
      (** slots still volatile when the program ends: writes that never
          became durable at all (the Figure 9 class of bug) *)
}

val explore :
  ?config:Config.t -> ?entry:string -> ?args:int list -> Nvmir.Prog.t ->
  exposure_report
(** Crash at every persistent event and measure how far the durable
    state is from the completed run's — a bug-agnostic view of the
    program's crash exposure. Non-zero [final_at_risk] means some write
    never became durable at all. *)

val pp_exposure_report : exposure_report Fmt.t

val consistent : report -> bool
val first_violation : report -> outcome option
val pp_report : report Fmt.t
