(** IR interpreter over the NVM simulator. All persistent operations go
    through {!Pmem}, so attached listeners — in particular the dynamic
    checker — observe exactly the events an instrumented binary would
    produce (steps 5–6 of Figure 8). *)

exception Runtime_error of string * Nvmir.Loc.t
exception Out_of_fuel

exception Corrupt_read of Pmem.addr * Nvmir.Loc.t
(** Typed outcome of an unguarded read (a load, or a pointer deref
    during place resolution) hitting a media-corrupt slot. Raised only
    under [trap_corrupt_reads]; the default mode records the read in
    {!corrupt_reads} so silently-accepting recovery code runs to
    completion — the very bug the recovery tier classifies. CRC
    primitives ({!Nvmir.Instr.Crc_of}/[Crc_check]) are guarded reads
    and never trigger this. *)

(** Persistence-ordering boundaries — the instruction classes at which
    an interleaving scheduler may preempt the executing thread. *)
type boundary =
  | Bflush
  | Bfence
  | Bpersist
  | Btx_begin
  | Btx_end
  | Bepoch_begin
  | Bepoch_end
  | Bstrand_begin
  | Bstrand_end

val boundary_name : boundary -> string

type t

val create :
  ?fuel:int ->
  ?boundary_hook:(boundary -> Nvmir.Loc.t -> unit) ->
  ?trap_corrupt_reads:bool ->
  pmem:Pmem.t ->
  Nvmir.Prog.t ->
  t
(** [fuel] bounds executed steps (default 5M). [boundary_hook] fires
    {e before} each boundary instruction executes — so a hook observing
    [Bflush] runs between the preceding stores and the write-back,
    which is exactly the preemption window delay-injection schedulers
    need. The hook may perform effects (the fuzzer yields to its
    scheduler from it); the interpreter keeps no state across the
    call. *)

val pmem : t -> Pmem.t
val steps : t -> int

val corrupt_reads : t -> (Pmem.addr * Nvmir.Loc.t) list
(** Unguarded reads that hit corrupt slots, in execution order (empty
    unless the heap was {!Pmem.restore}d from a corrupted image). *)

val run : ?entry:string -> ?args:int list -> t -> Value.t
(** Execute [entry] (default ["main"]) with integer arguments.
    @raise Runtime_error on ill-formed executions.
    @raise Out_of_fuel when the step budget is exhausted.
    @raise Invalid_argument when [entry] is undefined. *)

val run_values : ?entry:string -> ?args:Value.t list -> t -> Value.t
(** [run] with pre-built argument values (references included), for
    callers that thread one shared allocation into several entry
    points — the fuzzer's [fuzz_setup] convention. *)
