(* The shadow segment (§4.4): mirrors the persistent address space and
   records, per slot, the history of strand accesses — which strand last
   wrote it and which strands have read it since. DeepMC customizes
   ThreadSanitizer with exactly this structure; here it is a hash table
   keyed by concrete slot address, populated only for addresses touched
   inside annotated regions, which is what keeps the tracking cheap.

   Ordering representation: persist barriers in the runtime are global
   synchronization points, so happens-before admits a scalar fast path
   (in the spirit of FastTrack's epochs): every access is stamped with
   the global barrier count at the time it executed, every region with
   the barrier count at which it began. An earlier access (s, f)
   happens-before a later access by a region begun at barrier count b
   iff they are by the same strand or b > f (a barrier intervened). The
   general vector-clock machinery lives in [Vclock] and is exercised by
   the test suite; the checker uses the scalar form for speed.

   Concurrency: the segment is sharded into lock-striped sub-tables so
   listeners running on different client domains can record accesses
   concurrently. A cell's whole read/write history lives in one shard,
   so the conflict computation for an access happens atomically under
   that shard's lock; the global counters are atomics. *)

type access = {
  strand : int;
  fence_at : int; (* global barrier count when the access executed *)
  loc : Nvmir.Loc.t;
}

(* Is previous access [a] ordered before an access of [strand] whose
   region began at barrier count [begin_fence]? *)
let ordered_before (a : access) ~strand ~begin_fence =
  a.strand = strand || begin_fence > a.fence_at

type cell = {
  mutable last_write : access option;
  mutable reads : access list; (* reads since the last write *)
}

(* Cells are keyed by an int encoding of (obj, slot) so lookups avoid
   polymorphic hashing of tuples. The slot field is 30 bits wide; the
   object id occupies the bits above it, which leaves 32 bits of object
   ids on a 64-bit host. Out-of-range components are rejected instead of
   silently aliasing another object's slots (which would fabricate
   races). *)
let slot_bits = 30
let max_slot = (1 lsl slot_bits) - 1
let max_obj_id = (1 lsl (Sys.int_size - 1 - slot_bits)) - 1

let key ~obj_id ~slot =
  if slot < 0 || slot > max_slot then
    invalid_arg (Fmt.str "Shadow.key: slot %d outside [0, %d]" slot max_slot);
  if obj_id < 0 || obj_id > max_obj_id then
    invalid_arg
      (Fmt.str "Shadow.key: obj_id %d outside [0, %d]" obj_id max_obj_id);
  (obj_id lsl slot_bits) lor slot

type shard = {
  lock : Mutex.t;
  cells : (int, cell) Hashtbl.t;
}

let m_writes =
  Obs.Metrics.counter "shadow.writes" ~desc:"shadow-segment write records"

let m_reads =
  Obs.Metrics.counter "shadow.reads" ~desc:"shadow-segment read records"

let m_contention =
  Obs.Metrics.counter "shadow.lock_contention"
    ~desc:"shard-lock acquisitions that found the lock held"

(* Telemetry-aware shard lock: a failed [try_lock] is exactly one
   contended acquisition. Disabled, this is a plain [Mutex.lock]. *)
let lock_shard (m : Mutex.t) =
  if not (Obs.enabled ()) then Mutex.lock m
  else if Mutex.try_lock m then ()
  else begin
    Obs.Metrics.incr m_contention;
    Mutex.lock m
  end

type t = {
  shards : shard array; (* length is a power of two *)
  mask : int;
  tracked_writes : int Atomic.t;
  tracked_reads : int Atomic.t;
}

let default_shards = 16

let create ?(shards = default_shards) () =
  let n =
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    pow2 1
  in
  {
    shards =
      Array.init n (fun _ ->
          { lock = Mutex.create (); cells = Hashtbl.create 64 });
    mask = n - 1;
    tracked_writes = Atomic.make 0;
    tracked_reads = Atomic.make 0;
  }

let shard_count t = Array.length t.shards

(* Mix the object id into the low bits so one object's slots — and
   different objects — both spread across stripes. *)
let shard_of t key = t.shards.((key lxor (key lsr slot_bits)) land t.mask)

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.cells;
      Mutex.unlock s.lock)
    t.shards;
  Atomic.set t.tracked_writes 0;
  Atomic.set t.tracked_reads 0

let cell_locked shard key =
  match Hashtbl.find_opt shard.cells key with
  | Some c -> c
  | None ->
    let c = { last_write = None; reads = [] } in
    Hashtbl.replace shard.cells key c;
    c

(* Record a write; returns the conflicting accesses, if any: a WAW race
   with the previous writer and RAW races with readers not ordered
   before this write. [begin_fence] is the barrier count at which the
   writing region began. *)
let record_write t ~obj_id ~slot ~begin_fence (a : access) :
    [ `Waw of access | `Raw of access ] list =
  let key = key ~obj_id ~slot in
  let shard = shard_of t key in
  Atomic.incr t.tracked_writes;
  Obs.Metrics.incr m_writes;
  lock_shard shard.lock;
  let c = cell_locked shard key in
  let conflicts = ref [] in
  (match c.last_write with
  | Some w when not (ordered_before w ~strand:a.strand ~begin_fence) ->
    conflicts := `Waw w :: !conflicts
  | Some _ | None -> ());
  List.iter
    (fun r ->
      if not (ordered_before r ~strand:a.strand ~begin_fence) then
        conflicts := `Raw r :: !conflicts)
    c.reads;
  c.last_write <- Some a;
  c.reads <- [];
  Mutex.unlock shard.lock;
  List.rev !conflicts

(* Record a read; returns a RAW conflict when the read races with the
   previous write (the reader cannot know whether it observes pre- or
   post-persist data). *)
let record_read t ~obj_id ~slot ~begin_fence (a : access) :
    [ `Raw of access ] option =
  let key = key ~obj_id ~slot in
  let shard = shard_of t key in
  Atomic.incr t.tracked_reads;
  Obs.Metrics.incr m_reads;
  lock_shard shard.lock;
  let c = cell_locked shard key in
  c.reads <- a :: c.reads;
  let conflict =
    match c.last_write with
    | Some w when not (ordered_before w ~strand:a.strand ~begin_fence) ->
      Some (`Raw w)
    | Some _ | None -> None
  in
  Mutex.unlock shard.lock;
  conflict

(* Has [record_write] ever been called on this slot? Read-created cells
   have no [last_write], so the check is exact — it replaces the
   separate ever-written table the checker used to keep. *)
let ever_written t ~obj_id ~slot =
  let key = key ~obj_id ~slot in
  let shard = shard_of t key in
  lock_shard shard.lock;
  let r =
    match Hashtbl.find_opt shard.cells key with
    | Some c -> c.last_write <> None
    | None -> false
  in
  Mutex.unlock shard.lock;
  r

let tracked_cells t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = Hashtbl.length s.cells in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let pp ppf t =
  Fmt.pf ppf "shadow: %d cells in %d shard(s), %d writes, %d reads tracked"
    (tracked_cells t) (shard_count t)
    (Atomic.get t.tracked_writes)
    (Atomic.get t.tracked_reads)
