(* IR interpreter over the NVM simulator.

   Executes a validated program against a [Pmem.t] heap: stores, loads,
   flushes, fences, transactions and epoch/strand annotations all go
   through [Pmem], so any attached listener — in particular the dynamic
   checker — observes exactly the events an instrumented binary would
   produce (step 5/6 of Figure 8). *)

exception Runtime_error of string * Nvmir.Loc.t
exception Out_of_fuel

exception Corrupt_read of Pmem.addr * Nvmir.Loc.t
(* The typed outcome of an unguarded read hitting a media-corrupt slot,
   raised only under [trap_corrupt_reads]. The default mode records the
   read instead, so recovery code that silently accepts corrupt state
   runs to completion — which is itself the bug the recovery tier
   reports. *)

let error loc fmt = Fmt.kstr (fun m -> raise (Runtime_error (m, loc))) fmt

type frame = { func : Nvmir.Func.t; vars : (string, Value.t) Hashtbl.t }

(* Persistence-ordering boundaries: the instruction classes at which an
   interleaving scheduler may preempt. The hook fires before the
   instruction executes, so a scheduler observing [Bflush] preempts
   between the store and its write-back — the window PMRace-style delay
   injection needs. *)
type boundary =
  | Bflush
  | Bfence
  | Bpersist
  | Btx_begin
  | Btx_end
  | Bepoch_begin
  | Bepoch_end
  | Bstrand_begin
  | Bstrand_end

let boundary_name = function
  | Bflush -> "flush"
  | Bfence -> "fence"
  | Bpersist -> "persist"
  | Btx_begin -> "tx-begin"
  | Btx_end -> "tx-end"
  | Bepoch_begin -> "epoch-begin"
  | Bepoch_end -> "epoch-end"
  | Bstrand_begin -> "strand-begin"
  | Bstrand_end -> "strand-end"

type t = {
  prog : Nvmir.Prog.t;
  pmem : Pmem.t;
  mutable fuel : int;
  mutable steps : int;
  boundary_hook : (boundary -> Nvmir.Loc.t -> unit) option;
  trap_corrupt : bool;
  mutable corrupt_reads : (Pmem.addr * Nvmir.Loc.t) list; (* reversed *)
}

let create ?(fuel = 5_000_000) ?boundary_hook ?(trap_corrupt_reads = false)
    ~pmem prog =
  { prog; pmem; fuel; steps = 0; boundary_hook;
    trap_corrupt = trap_corrupt_reads; corrupt_reads = [] }

let pmem t = t.pmem
let steps t = t.steps
let corrupt_reads t = List.rev t.corrupt_reads

(* Every unguarded read funnels through here: loads, and pointer
   dereferences inside place resolution. CRC primitives do not — they
   are the guard. *)
let read_unguarded t loc addr =
  let v = Pmem.read t.pmem ~loc addr in
  if Pmem.is_corrupt t.pmem addr then begin
    if t.trap_corrupt then raise (Corrupt_read (addr, loc));
    t.corrupt_reads <- (addr, loc) :: t.corrupt_reads
  end;
  v

let tick t loc =
  t.steps <- t.steps + 1;
  if t.steps > t.fuel then begin
    ignore loc;
    raise Out_of_fuel
  end

let lookup frame loc v =
  match Hashtbl.find_opt frame.vars v with
  | Some value -> value
  | None -> error loc "unbound variable %s in %s" v frame.func.Nvmir.Func.fname

let eval_operand frame loc = function
  | Nvmir.Operand.Const n -> Value.Vint n
  | Nvmir.Operand.Bool_const b -> Value.Vbool b
  | Nvmir.Operand.Var v -> lookup frame loc v
  | Nvmir.Operand.Null -> Value.Vnull

(* Size in slots of a field of [struct_name]. *)
let field_size tenv ~struct_name ~field =
  match Nvmir.Ty.field_ty tenv ~struct_name ~field with
  | Some ty -> Nvmir.Ty.size_slots tenv ty
  | None -> 1

(* Element size of an array-typed field, for indexing. *)
let elem_size tenv ty =
  match ty with
  | Nvmir.Ty.Array (elem, _) -> Nvmir.Ty.size_slots tenv elem
  | _ -> 1

(* Resolve a place to a concrete address plus the slot extent of the
   denoted field/element. Returns (addr, nslots). *)
let resolve t frame loc (place : Nvmir.Place.t) : Pmem.addr * int =
  let tenv = Nvmir.Prog.tenv t.prog in
  let base_val = lookup frame loc (Nvmir.Place.base place) in
  let obj, off =
    match base_val with
    | Value.Vref { obj; off } -> (obj, off)
    | v ->
      error loc "place base %s does not hold a reference (%a)"
        (Nvmir.Place.base place) Value.pp v
  in
  let struct_name_at obj_id =
    match Pmem.obj_ty t.pmem obj_id with
    | Nvmir.Ty.Named s -> Some s
    | _ -> None
  in
  let rec walk obj off path =
    match (path : Nvmir.Place.access list) with
    | [] ->
      let size =
        if off = 0 then Pmem.obj_size t.pmem obj
        else 1 (* interior pointer: single slot by default *)
      in
      ({ Pmem.obj_id = obj; slot = off }, size)
    | Nvmir.Place.Field f :: rest -> (
      match struct_name_at obj with
      | Some s when off = 0 -> (
        match Nvmir.Ty.field_offset tenv ~struct_name:s ~field:f with
        | Some foff -> (
          let fsize = field_size tenv ~struct_name:s ~field:f in
          match rest with
          | [] -> ({ Pmem.obj_id = obj; slot = foff }, fsize)
          | Nvmir.Place.Index i :: rest' -> (
            let idx =
              Value.to_int (eval_operand frame loc (index_operand i))
            in
            let es =
              match Nvmir.Ty.field_ty tenv ~struct_name:s ~field:f with
              | Some fty -> elem_size tenv fty
              | None -> 1
            in
            let slot = foff + (idx * es) in
            match rest' with
            | [] -> ({ Pmem.obj_id = obj; slot }, es)
            | _ -> deref obj slot rest')
          | _ -> deref obj foff rest)
        | None -> error loc "struct %s has no field %s" s f)
      | Some _ | None ->
        (* interior pointer or unknown layout: treat the field hop as a
           pointer dereference through the current slot *)
        deref obj off (Nvmir.Place.Field f :: rest))
    | Nvmir.Place.Index i :: rest -> (
      let idx = Value.to_int (eval_operand frame loc (index_operand i)) in
      let es = elem_size tenv (Pmem.obj_ty t.pmem obj) in
      let slot = off + (idx * es) in
      match rest with
      | [] -> ({ Pmem.obj_id = obj; slot }, es)
      | _ -> deref obj slot rest)
  and deref obj slot path =
    match read_unguarded t loc { Pmem.obj_id = obj; slot } with
    | Value.Vref { obj = obj'; off = off' } -> walk obj' off' path
    | Value.Vnull -> error loc "null dereference in %a" Nvmir.Place.pp place
    | v -> error loc "dereferencing non-pointer %a" Value.pp v
  and index_operand i = i
  in
  walk obj off (Nvmir.Place.path place)

(* Extent of a flush/persist/log relative to the resolved place. *)
let extent_range t frame loc place (extent : Nvmir.Instr.extent) =
  let addr, nslots = resolve t frame loc place in
  match extent with
  | Nvmir.Instr.Exact -> (addr, nslots)
  | Nvmir.Instr.Object ->
    ( { Pmem.obj_id = addr.Pmem.obj_id; slot = 0 },
      Pmem.obj_size t.pmem addr.Pmem.obj_id )
  | Nvmir.Instr.Bytes n -> (addr, max 1 n)

(* Pointer arithmetic: ref +/- int adjusts the slot offset, and the
   difference of two refs into the SAME object is their slot distance
   (the only well-defined ref subtraction, as in C). Every other mix of
   refs and ints is a typed evaluation error — [Value.to_int] on a ref
   yields its object id, and silently folding that into arithmetic used
   to produce garbage results instead of a diagnostic. The static tier
   mirrors this same algebra in the [Aaddr.offset] lattice. *)
let cmp_int a b =
  match (a, b) with
  | Value.Vref { obj = o1; off = f1 }, Value.Vref { obj = o2; off = f2 }
    when o1 = o2 ->
    compare f1 f2
  | _ -> compare (Value.to_int a) (Value.to_int b)

let eval_binop loc op a b =
  let int2 name k =
    match (a, b) with
    | Value.Vref _, _ | _, Value.Vref _ ->
      error loc "%s on pointer value(s) %a, %a" name Value.pp a Value.pp b
    | _ -> k (Value.to_int a) (Value.to_int b)
  in
  match (op : Nvmir.Instr.binop) with
  | Nvmir.Instr.Add -> (
    match (a, b) with
    | Value.Vref { obj; off }, Value.Vint n
    | Value.Vint n, Value.Vref { obj; off } -> Value.vref ~off:(off + n) obj
    | _ -> int2 "addition" (fun ai bi -> Value.Vint (ai + bi)))
  | Nvmir.Instr.Sub -> (
    match (a, b) with
    | Value.Vref { obj; off }, Value.Vint n -> Value.vref ~off:(off - n) obj
    | Value.Vref { obj = o1; off = f1 }, Value.Vref { obj = o2; off = f2 } ->
      if o1 = o2 then Value.Vint (f1 - f2)
      else
        error loc "subtraction of pointers into different objects %a, %a"
          Value.pp a Value.pp b
    | _ -> int2 "subtraction" (fun ai bi -> Value.Vint (ai - bi)))
  | Nvmir.Instr.Mul -> int2 "multiplication" (fun ai bi -> Value.Vint (ai * bi))
  | Nvmir.Instr.Div ->
    int2 "division" (fun ai bi ->
        if bi = 0 then error loc "division by zero" else Value.Vint (ai / bi))
  | Nvmir.Instr.Eq -> Value.Vbool (Value.equal a b)
  | Nvmir.Instr.Ne -> Value.Vbool (not (Value.equal a b))
  (* orderings stay permissive: same-object refs compare by slot offset,
     everything else by [Value.to_int], as before *)
  | Nvmir.Instr.Lt -> Value.Vbool (cmp_int a b < 0)
  | Nvmir.Instr.Le -> Value.Vbool (cmp_int a b <= 0)
  | Nvmir.Instr.Gt -> Value.Vbool (cmp_int a b > 0)
  | Nvmir.Instr.Ge -> Value.Vbool (cmp_int a b >= 0)
  | Nvmir.Instr.And -> Value.Vbool (Value.truthy a && Value.truthy b)
  | Nvmir.Instr.Or -> Value.Vbool (Value.truthy a || Value.truthy b)

let rec exec_func t (func : Nvmir.Func.t) (args : Value.t list) : Value.t =
  let frame = { func; vars = Hashtbl.create 16 } in
  (if List.length args <> List.length func.params then
     error func.floc "%s expects %d argument(s), got %d" func.fname
       (List.length func.params) (List.length args));
  List.iter2
    (fun (p, _ty) v -> Hashtbl.replace frame.vars p v)
    func.params args;
  exec_block t frame (Nvmir.Func.entry_block func)

and exec_block t frame (block : Nvmir.Func.block) : Value.t =
  List.iter (exec_instr t frame) block.instrs;
  match block.term with
  | Nvmir.Func.Ret None -> Value.Vnull
  | Nvmir.Func.Ret (Some op) -> eval_operand frame block.term_loc op
  | Nvmir.Func.Br l -> goto t frame block.term_loc l
  | Nvmir.Func.Cond_br { cond; then_lbl; else_lbl } ->
    let v = eval_operand frame block.term_loc cond in
    goto t frame block.term_loc
      (if Value.truthy v then then_lbl else else_lbl)

and goto t frame loc label =
  tick t loc;
  match Nvmir.Func.find_block frame.func label with
  | Some b -> exec_block t frame b
  | None -> error loc "no block %s in %s" label frame.func.Nvmir.Func.fname

and boundary_of_instr (i : Nvmir.Instr.t) =
  match i.kind with
  | Nvmir.Instr.Flush _ -> Some Bflush
  | Nvmir.Instr.Fence -> Some Bfence
  | Nvmir.Instr.Persist _ -> Some Bpersist
  | Nvmir.Instr.Tx_begin -> Some Btx_begin
  | Nvmir.Instr.Tx_end -> Some Btx_end
  | Nvmir.Instr.Epoch_begin -> Some Bepoch_begin
  | Nvmir.Instr.Epoch_end -> Some Bepoch_end
  | Nvmir.Instr.Strand_begin _ -> Some Bstrand_begin
  | Nvmir.Instr.Strand_end _ -> Some Bstrand_end
  | _ -> None

and exec_instr t frame (i : Nvmir.Instr.t) =
  tick t i.loc;
  (match t.boundary_hook with
  | None -> ()
  | Some hook -> (
    match boundary_of_instr i with
    | Some b -> hook b i.loc
    | None -> ()));
  let loc = i.loc in
  match i.kind with
  | Nvmir.Instr.Store { dst; src } ->
    let addr, _ = resolve t frame loc dst in
    Pmem.write t.pmem ~loc addr (eval_operand frame loc src)
  | Nvmir.Instr.Load { dst; src } ->
    let addr, _ = resolve t frame loc src in
    Hashtbl.replace frame.vars dst (read_unguarded t loc addr)
  | Nvmir.Instr.Assign { dst; src } ->
    Hashtbl.replace frame.vars dst (eval_operand frame loc src)
  | Nvmir.Instr.Binop { dst; op; lhs; rhs } ->
    Hashtbl.replace frame.vars dst
      (eval_binop loc op (eval_operand frame loc lhs) (eval_operand frame loc rhs))
  | Nvmir.Instr.Alloc { dst; ty; space } ->
    let pointee = match ty with Nvmir.Ty.Ptr inner -> inner | other -> other in
    let id =
      Pmem.alloc t.pmem ~name:dst ~tenv:(Nvmir.Prog.tenv t.prog)
        ~persistent:(space = Nvmir.Instr.Persistent)
        pointee
    in
    Hashtbl.replace frame.vars dst (Value.vref id)
  | Nvmir.Instr.Addr_of { dst; src } ->
    let addr, _ = resolve t frame loc src in
    Hashtbl.replace frame.vars dst
      (Value.vref ~off:addr.Pmem.slot addr.Pmem.obj_id)
  | Nvmir.Instr.Flush { target; extent } ->
    let addr, nslots = extent_range t frame loc target extent in
    Pmem.flush_range t.pmem ~loc ~obj_id:addr.Pmem.obj_id
      ~first_slot:addr.Pmem.slot ~nslots ()
  | Nvmir.Instr.Fence -> Pmem.fence t.pmem ~loc ()
  | Nvmir.Instr.Persist { target; extent } ->
    let addr, nslots = extent_range t frame loc target extent in
    Pmem.persist_range t.pmem ~loc ~obj_id:addr.Pmem.obj_id
      ~first_slot:addr.Pmem.slot ~nslots ()
  | Nvmir.Instr.Tx_begin -> Pmem.tx_begin t.pmem ~loc ()
  | Nvmir.Instr.Tx_end -> Pmem.tx_end t.pmem ~loc ()
  | Nvmir.Instr.Tx_add { target; extent } ->
    let addr, nslots = extent_range t frame loc target extent in
    Pmem.tx_add t.pmem ~loc ~obj_id:addr.Pmem.obj_id
      ~first_slot:addr.Pmem.slot ~nslots ()
  | Nvmir.Instr.Epoch_begin -> Pmem.epoch_begin t.pmem ~loc ()
  | Nvmir.Instr.Epoch_end -> Pmem.epoch_end t.pmem ~loc ()
  | Nvmir.Instr.Strand_begin n -> Pmem.strand_begin t.pmem ~loc n
  | Nvmir.Instr.Strand_end n -> Pmem.strand_end t.pmem ~loc n
  | Nvmir.Instr.Call { dst; callee; args } -> (
    let arg_vals = List.map (eval_operand frame loc) args in
    match Nvmir.Prog.find_func t.prog callee with
    | Some f ->
      let ret = exec_func t f arg_vals in
      Option.iter (fun d -> Hashtbl.replace frame.vars d ret) dst
    | None -> error loc "call to undefined function %s" callee)
  | Nvmir.Instr.Crc_of { dst; target; extent } ->
    let addr, nslots = extent_range t frame loc target extent in
    Hashtbl.replace frame.vars dst
      (Value.Vint
         (Pmem.crc_of_range t.pmem ~obj_id:addr.Pmem.obj_id
            ~first_slot:addr.Pmem.slot ~nslots))
  | Nvmir.Instr.Crc_check { dst; target; extent; crc } ->
    let addr, nslots = extent_range t frame loc target extent in
    (* the CRC slot itself is part of the guard: a corrupt checksum must
       read as "invalid", never as a lucky match *)
    let crc_addr, _ = resolve t frame loc crc in
    let crc_val = Pmem.read t.pmem ~loc crc_addr in
    let ok =
      (not (Pmem.is_corrupt t.pmem crc_addr))
      && Pmem.crc_check_range t.pmem ~obj_id:addr.Pmem.obj_id
           ~first_slot:addr.Pmem.slot ~nslots ~crc:crc_val
    in
    Hashtbl.replace frame.vars dst (Value.Vbool ok)
  | Nvmir.Instr.Comment _ -> ()

(* Run [entry] with pre-built values (references included), for callers
   that thread a shared allocation into several entry points. *)
let run_values ?(entry = "main") ?(args = []) t : Value.t =
  match Nvmir.Prog.find_func t.prog entry with
  | None -> invalid_arg (Fmt.str "Interp.run_values: no function %s" entry)
  | Some f -> exec_func t f args

(* Run [entry] with integer arguments. *)
let run ?(entry = "main") ?(args = []) t : Value.t =
  run_values ~entry ~args:(List.map (fun n -> Value.Vint n) args) t
