(* redis-benchmark-style load for the log-structured store: the default
   redis-benchmark command mix (SET, GET, INCR, and two list/set-style
   command stand-ins that append to the log). *)

type op = Set | Get | Incr | Lpush | Sadd

let mixes : (string * op Gen.mix) list =
  [
    ("redis-set", [ (Set, 100) ]);
    ("redis-get", [ (Get, 100) ]);
    ("redis-incr", [ (Incr, 100) ]);
    ("redis-lpush", [ (Lpush, 100) ]);
    ("redis-mixed", [ (Set, 30); (Get, 40); (Incr, 15); (Lpush, 10); (Sadd, 5) ]);
  ]

let keyspace = 2048

(* The log is a ring; a modest capacity keeps the working set small even
   with 50 concurrent client heaps, each holding its own log. *)
let setup pmem =
  let st = Logstore.create ~log_capacity:(1 lsl 15) pmem in
  for k = 1 to keyspace / 2 do
    Logstore.set st k k
  done;
  st

(* per-request compute of the modeled server (RESP parsing, reply
   building); Redis does more protocol work per command than memcached *)
let request_work = 10000

let run_op mix st rng ~client =
  ignore (Gen.simulate_work rng ~amount:request_work);
  let key = 1 + Gen.uniform rng ~keyspace in
  match Gen.pick rng mix with
  | Set -> Logstore.set st key (client + 1)
  | Get -> ignore (Logstore.get st key)
  | Incr -> ignore (Logstore.incr st key)
  | Lpush -> Logstore.set st (key lor 0x10000) client
  | Sadd -> Logstore.set st (key lor 0x20000) 1

let comparison ?execution ?seed ?(clients = 50) ?(txs = 100_000) (label, mix) =
  Harness.compare_checked ~label ?execution ?seed ~clients ~txs ~setup
    ~op:(fun st rng ~client -> run_op mix st rng ~client)
    ()
