(** IR renditions of the Figure 12 application workloads for the
    interleaving fuzzer: each generator emits the fuzzer's program
    convention — [fuzz_setup] returning one shared persistent region,
    one straight-line [fuzz_client_<c>] per client drawn from the
    corresponding driver's operation mix and key distribution — so
    [deepmc fuzz] covers the real application workloads, not just the
    synthetic targets. Pure functions of (clients, ops, seed). *)

type gen = ?clients:int -> ?ops:int -> ?seed:int -> unit -> Nvmir.Prog.t

val memslap : gen
(** Epoch-persistent table mutations (the {!Kvstore} discipline),
    default memcached mix. *)

val redis : gen
(** Log appends ordered entry-before-head against a shared head counter
    (the {!Logstore} discipline), default redis-benchmark mix. *)

val ycsb : gen
(** One undo-logged transaction per mutation (the {!Txstore}
    discipline), default YCSB-A mix over the Zipf key distribution. *)

val all : (string * gen) list
val find : string -> gen option
