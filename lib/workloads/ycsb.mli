(** YCSB for the NStore-like transactional store: workloads A–F. *)

type op = Update | Read | Insert | Scan | Rmw

val mixes : (string * op Gen.mix) list
val keyspace : int
val theta : float
val request_work : int
val setup : Runtime.Pmem.t -> Txstore.t
val run_op : op Gen.mix -> Txstore.t -> Gen.rng -> client:int -> unit

val comparison :
  ?execution:Harness.execution ->
  ?seed:int ->
  ?clients:int -> ?txs:int -> string * op Gen.mix -> Harness.comparison
(** One Figure 12 NStore data point (default 4 clients). *)
