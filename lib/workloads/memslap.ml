(* memslap-style load generator for the Memcached-like store: the five
   operation mixes of Figure 12 (Memcached-1 .. Memcached-5). *)

type op = Update | Read | Insert | Rmw

(* (1) 50% update / 50% read; (2) 5% update / 95% read; (3) 100% read;
   (4) 5% insert / 95% read; (5) 50% RMW / 50% read. *)
let mixes : (string * op Gen.mix) list =
  [
    ("memcached-1 (50u/50r)", [ (Update, 50); (Read, 50) ]);
    ("memcached-2 (5u/95r)", [ (Update, 5); (Read, 95) ]);
    ("memcached-3 (100r)", [ (Read, 100) ]);
    ("memcached-4 (5i/95r)", [ (Insert, 5); (Read, 95) ]);
    ("memcached-5 (50rmw/50r)", [ (Rmw, 50); (Read, 50) ]);
  ]

let keyspace = 2048

let setup pmem =
  let kv = Kvstore.create ~capacity:(keyspace * 2) pmem in
  (* preload half the keyspace so reads mostly hit *)
  for k = 1 to keyspace / 2 do
    ignore (Kvstore.set kv k (k * 3))
  done;
  kv

(* per-request compute of the modeled server (parse + hash + copy) *)
let request_work = 2500

let run_op mix kv rng ~client =
  ignore (Gen.simulate_work rng ~amount:request_work);
  let key = 1 + Gen.uniform rng ~keyspace in
  match Gen.pick rng mix with
  | Update -> ignore (Kvstore.set kv key (client + 1))
  | Read -> ignore (Kvstore.get kv key)
  | Insert -> ignore (Kvstore.set kv (1 + Gen.uniform rng ~keyspace) client)
  | Rmw -> ignore (Kvstore.rmw kv key (fun v -> v + 1))

(* One Figure 12 Memcached data point. *)
let comparison ?execution ?seed ?(clients = 4) ?(txs = 100_000) (label, mix) =
  Harness.compare_checked ~label ?execution ?seed ~clients ~txs ~setup
    ~op:(fun kv rng ~client -> run_op mix kv rng ~client)
    ()
