(* Deterministic workload generation: a splitmix-style PRNG (so every
   benchmark run is reproducible without touching the global [Random]
   state) and the key distributions the generators use. *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int seed }

(* The splitmix64 output finalizer, used below to derive independent
   stream seeds: it is a bijection with good avalanche, so distinct
   (seed, purpose) pairs land on well-separated initial states. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Purpose-split streams. The historical pattern [rng (seed + c)] for
   client [c] aliases across consumers: client c of campaign seed s is
   the same stream as client 0 of seed s + c, and any other subsystem
   seeding [rng] near s collides with some client. Deriving the state
   as mix(mix(seed) ^ tag ^ mix(arg)) separates the client streams from
   each other and from every other purpose while staying a pure
   function of the one user-facing seed. *)
type purpose = Client of int | Schedule of int

let purpose_tag = function
  | Client _ -> 0x436C69656E745F30L (* "Client_0" *)
  | Schedule _ -> 0x5363686564756C65L (* "Schedule" *)

let purpose_arg = function Client c -> c | Schedule i -> i

let stream seed purpose =
  let s = mix64 (Int64.of_int seed) in
  let p = mix64 (Int64.of_int (purpose_arg purpose)) in
  { state = mix64 (Int64.logxor (Int64.logxor s (purpose_tag purpose)) p) }

(* splitmix64 *)
let next_int64 r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int r bound =
  if bound <= 0 then invalid_arg "Gen.next_int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 r) Int64.max_int) (Int64.of_int bound))

let next_float r =
  Int64.to_float (Int64.logand (next_int64 r) 0xFFFFFFFFFFFFFL) /. 4503599627370496.0

(* Uniform keys in [0, keyspace). *)
let uniform r ~keyspace = next_int r keyspace

(* A cheap Zipf-like skew: repeatedly halve the range with probability
   [theta]; hot keys are small indices. Close enough to YCSB's scrambled
   Zipfian for benchmark-shape purposes. *)
let skewed r ~keyspace ~theta =
  let rec go lo hi =
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if next_float r < theta then go lo mid else go mid hi
  in
  go 0 keyspace

(* Simulated request-processing compute: stands in for the per-request
   work a real server does around each persistent update (network
   handling, protocol parsing, value copying). The amount calibrates the
   compute-to-persistence ratio of the modeled application, which is
   what the relative checking overhead of Figure 12 depends on. *)
let simulate_work r ~amount =
  (* plain int arithmetic: no allocation, so the simulated compute adds
     stable latency instead of GC pressure *)
  let acc = ref (Int64.to_int r.state land 0xFFFF) in
  for _ = 1 to amount do
    acc := ((!acc * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  Sys.opaque_identity !acc

(* Operation mixes are weighted lists; [pick] draws one operation. *)
type 'op mix = ('op * int) list

let pick r (mix : 'op mix) =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 mix in
  let n = next_int r total in
  let rec go n = function
    | [] -> invalid_arg "Gen.pick: empty mix"
    | [ (op, _) ] -> op
    | (op, w) :: rest -> if n < w then op else go (n - w) rest
  in
  go n mix
