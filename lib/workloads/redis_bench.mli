(** redis-benchmark-style load for the log-structured store: the default
    command mix (SET, GET, INCR, plus list/set-style stand-ins). *)

type op = Set | Get | Incr | Lpush | Sadd

val mixes : (string * op Gen.mix) list
val keyspace : int
val request_work : int
val setup : Runtime.Pmem.t -> Logstore.t
val run_op : op Gen.mix -> Logstore.t -> Gen.rng -> client:int -> unit

val comparison :
  ?execution:Harness.execution ->
  ?seed:int ->
  ?clients:int -> ?txs:int -> string * op Gen.mix -> Harness.comparison
(** One Figure 12 Redis data point (default 50 clients). *)
