(** memslap-style load generator for the Memcached-like store: the five
    operation mixes of Figure 12. *)

type op = Update | Read | Insert | Rmw

val mixes : (string * op Gen.mix) list
val keyspace : int
val request_work : int
val setup : Runtime.Pmem.t -> Kvstore.t
val run_op : op Gen.mix -> Kvstore.t -> Gen.rng -> client:int -> unit

val comparison :
  ?execution:Harness.execution ->
  ?seed:int ->
  ?clients:int -> ?txs:int -> string * op Gen.mix -> Harness.comparison
(** One Figure 12 Memcached data point (default 4 clients). *)
