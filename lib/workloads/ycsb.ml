(* YCSB [7] for the NStore-like transactional store: the standard
   workload mixes A–F (E uses short scans). *)

type op = Update | Read | Insert | Scan | Rmw

let mixes : (string * op Gen.mix) list =
  [
    ("ycsb-a (50u/50r)", [ (Update, 50); (Read, 50) ]);
    ("ycsb-b (5u/95r)", [ (Update, 5); (Read, 95) ]);
    ("ycsb-c (100r)", [ (Read, 100) ]);
    ("ycsb-d (5i/95r)", [ (Insert, 5); (Read, 95) ]);
    ("ycsb-e (5i/95scan)", [ (Insert, 5); (Scan, 95) ]);
    ("ycsb-f (50rmw/50r)", [ (Rmw, 50); (Read, 50) ]);
  ]

let keyspace = 2048
let theta = 0.6 (* zipf-like skew *)

let setup pmem =
  let st = Txstore.create ~nrecords:(keyspace * 2) pmem in
  for k = 0 to keyspace - 1 do
    Txstore.insert st k k
  done;
  st

(* per-request compute of the modeled engine (query dispatch, record
   marshalling) *)
let request_work = 2700

let run_op mix st rng ~client =
  ignore (Gen.simulate_work rng ~amount:request_work);
  let key = Gen.skewed rng ~keyspace ~theta in
  match Gen.pick rng mix with
  | Update -> Txstore.update st key (client + 1)
  | Read -> ignore (Txstore.read st key)
  | Insert -> Txstore.insert st (Gen.uniform rng ~keyspace) client
  | Scan -> ignore (Txstore.scan st key 10)
  | Rmw -> Txstore.read_modify_write st key (fun v -> v + 1)

let comparison ?execution ?seed ?(clients = 4) ?(txs = 100_000) (label, mix) =
  Harness.compare_checked ~label ?execution ?seed ~clients ~txs ~setup
    ~op:(fun st rng ~client -> run_op mix st rng ~client)
    ()
