(** Deterministic workload generation: a splitmix-style PRNG, key
    distributions, weighted operation mixes, and simulated per-request
    compute. *)

type rng

val rng : int -> rng

(** Purpose-split streams derived from one user-facing seed. [Client c]
    is the request stream of harness client [c]; [Schedule i] is the
    [i]-th delay-schedule stream of the interleaving fuzzer. Streams
    for distinct purposes (or distinct arguments of one purpose) are
    independent — unlike the historical [rng (seed + c)] pattern, where
    client [c] of seed [s] aliased client [0] of seed [s + c] and any
    other consumer seeding near [s]. *)
type purpose = Client of int | Schedule of int

val stream : int -> purpose -> rng
(** [stream seed purpose] mixes [(seed, purpose)] through the splitmix
    finalizer into a fresh stream state. *)

val next_int64 : rng -> int64

val next_int : rng -> int -> int
(** @raise Invalid_argument on non-positive bounds. *)

val next_float : rng -> float
(** In [0, 1). *)

val uniform : rng -> keyspace:int -> int

val skewed : rng -> keyspace:int -> theta:float -> int
(** Zipf-like: hot keys are small indices; [theta] controls skew. *)

val simulate_work : rng -> amount:int -> int
(** Allocation-free integer compute standing in for per-request server
    work; calibrates the compute-to-persistence ratio Figure 12's
    relative overheads depend on. *)

type 'op mix = ('op * int) list
(** Weighted operations. *)

val pick : rng -> 'op mix -> 'op
(** @raise Invalid_argument on an empty mix. *)
