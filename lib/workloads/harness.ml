(* Measurement harness for the application benchmarks (Table 6 /
   Figure 12): runs a fixed number of transactions from simulated
   clients against a store built on the NVM runtime, with or without
   the dynamic checker attached, and reports throughput.

   Two execution modes:

   - [Concurrent] (default, the paper's setup): each client gets its own
     heap + store instance and runs its share of the transactions on a
     pool domain, all observed by one checker through client-bound
     listeners. Client heaps allocate from disjoint object-id ranges so
     shadow-segment keys never collide across clients, which also makes
     the reported warnings independent of domain interleaving.
   - [Interleaved] the historical single-domain replay: one heap, one
     store, the active client switched before each transaction. Kept for
     differential tests and single-core determinism. *)

type execution = Interleaved | Concurrent

(* Disjoint per-client object-id ranges; a client allocating a million
   objects would overflow into the next range, which no workload here
   approaches (and Shadow.key rejects ids beyond its field width). *)
let obj_id_stride = 1 lsl 20

type result = {
  label : string;
  txs : int;
  clients : int;
  elapsed_s : float;
  throughput : float; (* transactions per second *)
  checked : bool;
  dynamic : Runtime.Dynamic.summary option;
  stores : int;
  loads : int;
  flushes : int;
  fences : int;
}

let sum_stats pmems =
  List.fold_left
    (fun (st, ld, fl, fe) pm ->
      let s = Runtime.Pmem.stats pm in
      ( st + s.Runtime.Pmem.stores,
        ld + s.Runtime.Pmem.loads,
        fl + s.Runtime.Pmem.flushes,
        fe + s.Runtime.Pmem.fences ))
    (0, 0, 0, 0) pmems

let finish ~label ~txs ~clients ~checked ~checker ~pmems ~elapsed_s =
  let stores, loads, flushes, fences = sum_stats pmems in
  {
    label;
    txs;
    clients;
    elapsed_s;
    throughput = float_of_int txs /. elapsed_s;
    checked;
    dynamic = Option.map Runtime.Dynamic.summary checker;
    stores;
    loads;
    flushes;
    fences;
  }

(* [setup] builds the store on a fresh heap; [op] executes one client
   transaction. The dynamic checker (epoch model: all three applications
   use epoch-style persistence) is attached before the run when
   [checked] is set, mirroring the instrumented binaries of §5.2. *)
(* Every randomized path seeds from [seed] (default the historical
   0xC0FFEE) so one CLI/bench --seed reproduces the whole run. *)
let default_seed = 0xC0FFEE

let run_interleaved ~label ~model ~seed ~clients ~txs ~checked ~setup ~op =
  let pmem = Runtime.Pmem.create () in
  let checker =
    if checked then begin
      let c = Runtime.Dynamic.create ~model () in
      Runtime.Dynamic.attach c pmem;
      Some c
    end
    else None
  in
  let store = setup pmem in
  let rng = Gen.rng seed in
  let t0 = Deepmc.Clock.now () in
  for i = 0 to txs - 1 do
    let client = i mod clients in
    (match checker with
    | Some c -> Runtime.Dynamic.set_thread c client
    | None -> ());
    op store rng ~client
  done;
  let elapsed_s = max 1e-9 (Deepmc.Clock.elapsed_s t0) in
  finish ~label ~txs ~clients ~checked ~checker ~pmems:[ pmem ] ~elapsed_s

(* Real client domains: each client owns a heap and a store instance and
   burns through its share of the transactions as one pool task, so the
   measured interval contains genuine multicore execution (on a 1-core
   host the pool degrades to running the tasks on the submitter). *)
let run_concurrent ~label ~model ~seed ~clients ~txs ~checked ~setup ~op =
  let checker =
    if checked then Some (Runtime.Dynamic.create ~model ()) else None
  in
  let contexts =
    List.init clients (fun c ->
        let pmem =
          Runtime.Pmem.create ~first_obj_id:(c * obj_id_stride)
            ~obj_id_limit:((c + 1) * obj_id_stride) ()
        in
        (match checker with
        | Some ck -> Runtime.Dynamic.attach_client ck ~thread:c pmem
        | None -> ());
        let store = setup pmem in
        let share = (txs / clients) + if c < txs mod clients then 1 else 0 in
        (c, pmem, store, share))
  in
  let t0 = Deepmc.Clock.now () in
  ignore
    (Pool.map ~domains:clients ~chunk:1 (Pool.default ())
       (fun (c, _pmem, store, share) ->
         (* purpose-split stream: client c's requests must not alias
            another client's (or the fuzzer's delay schedules) when
            campaign seeds are themselves sequential *)
         let rng = Gen.stream seed (Gen.Client c) in
         for _ = 1 to share do
           op store rng ~client:c
         done)
       contexts);
  let elapsed_s = max 1e-9 (Deepmc.Clock.elapsed_s t0) in
  let pmems = List.map (fun (_, pm, _, _) -> pm) contexts in
  finish ~label ~txs ~clients ~checked ~checker ~pmems ~elapsed_s

let run_once ~execution ~label ~model ~seed ~clients ~txs ~checked ~setup ~op =
  match execution with
  | Interleaved ->
    run_interleaved ~label ~model ~seed ~clients ~txs ~checked ~setup ~op
  | Concurrent ->
    run_concurrent ~label ~model ~seed ~clients ~txs ~checked ~setup ~op

(* Best of [repeats] runs: wall-clock noise (GC pauses, scheduler) only
   ever slows a run down, so the fastest run is the cleanest signal. *)
let measure ~label ?(model = Analysis.Model.Epoch) ?(repeats = 3)
    ?(execution = Concurrent) ?(seed = default_seed) ~clients ~txs ~checked
    ~setup ~op () =
  let runs =
    List.init (max 1 repeats) (fun _ ->
        run_once ~execution ~label ~model ~seed ~clients ~txs ~checked ~setup
          ~op)
  in
  List.fold_left
    (fun best r -> if r.elapsed_s < best.elapsed_s then r else best)
    (List.hd runs) (List.tl runs)

(* Figure 12 data point: the same workload with and without the dynamic
   checker; overhead is the relative throughput loss. *)
type comparison = {
  baseline : result;
  with_checker : result;
  overhead_pct : float;
}

let compare_checked ~label ?model ?repeats ?execution ?seed ~clients ~txs
    ~setup ~op () =
  let baseline =
    measure ~label ?model ?repeats ?execution ?seed ~clients ~txs
      ~checked:false ~setup ~op ()
  in
  let with_checker =
    measure ~label ?model ?repeats ?execution ?seed ~clients ~txs
      ~checked:true ~setup ~op ()
  in
  let overhead_pct =
    100. *. (1. -. (with_checker.throughput /. baseline.throughput))
  in
  { baseline; with_checker; overhead_pct }

let pp_result ppf r =
  Fmt.pf ppf "%-28s %8d tx %2d clients %s: %10.0f tx/s (%.3f s)" r.label r.txs
    r.clients
    (if r.checked then "checked " else "baseline")
    r.throughput r.elapsed_s

let pp_comparison ppf c =
  Fmt.pf ppf "%-28s baseline %10.0f tx/s | DeepMC %10.0f tx/s | overhead %5.1f%%"
    c.baseline.label c.baseline.throughput c.with_checker.throughput
    c.overhead_pct
