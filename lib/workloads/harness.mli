(** Measurement harness for the application benchmarks (Table 6 /
    Figure 12): run a fixed number of client transactions against a
    store on the NVM runtime, with or without the dynamic checker, and
    report throughput. *)

(** How the clients execute. [Concurrent] (the default, and the paper's
    setup) gives each client its own heap + store instance, driven on a
    pool domain, all observed by one checker through client-bound
    listeners; client heaps use disjoint object-id ranges so warnings
    are interleaving-independent. [Interleaved] is the historical
    single-domain replay (one heap, active client switched per
    transaction). *)
type execution = Interleaved | Concurrent

val obj_id_stride : int
(** Object-id range reserved per client in [Concurrent] mode. *)

val default_seed : int
(** Seed used when [?seed] is omitted (the historical 0xC0FFEE). *)

type result = {
  label : string;
  txs : int;
  clients : int;
  elapsed_s : float;
  throughput : float;  (** transactions per second *)
  checked : bool;
  dynamic : Runtime.Dynamic.summary option;
  stores : int;
  loads : int;
  flushes : int;
  fences : int;
}

val measure :
  label:string ->
  ?model:Analysis.Model.t ->
  ?repeats:int ->
  ?execution:execution ->
  ?seed:int ->
  clients:int ->
  txs:int ->
  checked:bool ->
  setup:(Runtime.Pmem.t -> 'st) ->
  op:('st -> Gen.rng -> client:int -> unit) ->
  unit ->
  result
(** Best of [repeats] runs (default 3): wall-clock noise only slows runs
    down, so the fastest run is the cleanest signal. [seed] drives every
    randomized choice the clients make (client [c] draws from the
    purpose-split stream [Gen.stream seed (Client c)]), so a run is
    reproducible end to end from the one value. In [Concurrent]
    mode [setup] runs once per client (each on its own heap) and [op]
    must not share mutable state across clients. *)

type comparison = {
  baseline : result;
  with_checker : result;
  overhead_pct : float;
}

val compare_checked :
  label:string ->
  ?model:Analysis.Model.t ->
  ?repeats:int ->
  ?execution:execution ->
  ?seed:int ->
  clients:int ->
  txs:int ->
  setup:(Runtime.Pmem.t -> 'st) ->
  op:('st -> Gen.rng -> client:int -> unit) ->
  unit ->
  comparison
(** One Figure 12 data point. *)

val pp_result : result Fmt.t
val pp_comparison : comparison Fmt.t
