(* IR renditions of the Figure 12 application workloads for the
   interleaving fuzzer.

   The OCaml drivers (Memslap / Redis_bench / Ycsb) exercise the
   native stores directly through [Runtime.Pmem], which the schedule
   fuzzer cannot interleave — it replays IR programs whose clients
   yield at persistence boundaries. Each generator here emits the
   fuzzer's program convention ([fuzz_setup] returning the shared
   region, one [fuzz_client_<c>] per client) with a straight-line,
   per-client operation sequence drawn from the same operation mix and
   key distribution as the corresponding driver, over one shared
   persistent region — so cross-client WAW/RAW pairs exist for the
   coverage map to chase. Generation is a pure function of
   (clients, ops, seed). *)

open Nvmir.Builder

type gen = ?clients:int -> ?ops:int -> ?seed:int -> unit -> Nvmir.Prog.t

let nslots = 16

(* per-client request streams come from the same purpose-split RNG the
   harness uses, so client c's sequence never aliases another seed *)
let client_rng seed c = Gen.stream seed (Gen.Client c)

let shared_setup prog ~file ~size =
  ignore
    (func prog ~file ~ret:(Nvmir.Ty.Ptr (Nvmir.Ty.Array (Nvmir.Ty.Int, size)))
       "fuzz_setup" [] (fun fb ->
         palloc fb "p" (Nvmir.Ty.Array (Nvmir.Ty.Int, size));
         ret fb ~value:(v "p") ()))

(* `deepmc fuzz` requires the entry to exist even when every client has
   its own [fuzz_client_<c>]; it also serves as the sequential
   fallback when --clients exceeds the generated count *)
let fallback_main prog ~file =
  ignore (func prog ~file "main" [] (fun fb -> ret fb ()))

(* ------------------------------------------------------------------ *)
(* memslap: epoch-persistent table mutations, one epoch per mutation
   (the Kvstore discipline). *)

let memslap ?(clients = 4) ?(ops = 6) ?(seed = 1) () =
  let file = "memslap_fuzz.c" in
  let prog = Nvmir.Prog.create () in
  shared_setup prog ~file ~size:nslots;
  for c = 0 to clients - 1 do
    let r = client_rng seed c in
    ignore
      (func prog ~file
         (Fmt.str "fuzz_client_%d" c)
         [ ("p", Nvmir.Ty.Ptr (Nvmir.Ty.Array (Nvmir.Ty.Int, nslots))) ]
         (fun fb ->
           List.iteri
             (fun j op ->
               let line = (c * 100) + (j * 10) in
               let key = i (Gen.uniform r ~keyspace:nslots) in
               let t = Fmt.str "t%d" j in
               match op with
               | Memslap.Update | Memslap.Insert ->
                 epoch_begin fb ~line ();
                 store fb ~line:(line + 1) (idx "p" key) (i (c + 1));
                 persist fb ~line:(line + 2) (idx "p" key);
                 epoch_end fb ~line:(line + 3) ()
               | Memslap.Read -> load fb ~line t (idx "p" key)
               | Memslap.Rmw ->
                 epoch_begin fb ~line ();
                 load fb ~line:(line + 1) t (idx "p" key);
                 binop fb (t ^ "n") Nvmir.Instr.Add (v t) (i 1);
                 store fb ~line:(line + 2) (idx "p" key) (v (t ^ "n"));
                 persist fb ~line:(line + 3) (idx "p" key);
                 epoch_end fb ~line:(line + 4) ())
             (List.init ops (fun _ -> Gen.pick r (snd (List.hd Memslap.mixes))));
           ret fb ()))
  done;
  fallback_main prog ~file;
  prog

(* ------------------------------------------------------------------ *)
(* redis-benchmark: log appends against a shared head counter (slot 0;
   entries from slot 1). Entry first, then the head publish — each made
   durable in order inside one epoch, as the Logstore does. *)

let redis ?(clients = 4) ?(ops = 6) ?(seed = 1) () =
  let file = "redis_fuzz.c" in
  let size = 2 + (clients * ops) in
  let prog = Nvmir.Prog.create () in
  shared_setup prog ~file ~size;
  for c = 0 to clients - 1 do
    let r = client_rng seed c in
    ignore
      (func prog ~file
         (Fmt.str "fuzz_client_%d" c)
         [ ("p", Nvmir.Ty.Ptr (Nvmir.Ty.Array (Nvmir.Ty.Int, size))) ]
         (fun fb ->
           List.iteri
             (fun j op ->
               let line = (c * 100) + (j * 10) in
               let t = Fmt.str "t%d" j in
               match op with
               | Redis_bench.Set | Redis_bench.Lpush | Redis_bench.Sadd ->
                 (* append: entry durable before the head moves *)
                 epoch_begin fb ~line ();
                 load fb ~line:(line + 1) t (idx "p" (i 0));
                 binop fb (t ^ "e") Nvmir.Instr.Add (v t) (i 1);
                 store fb ~line:(line + 2) (idx "p" (v (t ^ "e"))) (i (c + 1));
                 persist fb ~line:(line + 3) (idx "p" (v (t ^ "e")));
                 store fb ~line:(line + 4) (idx "p" (i 0)) (v (t ^ "e"));
                 persist fb ~line:(line + 5) (idx "p" (i 0));
                 epoch_end fb ~line:(line + 6) ()
               | Redis_bench.Get -> load fb ~line t (idx "p" (i 1))
               | Redis_bench.Incr ->
                 epoch_begin fb ~line ();
                 load fb ~line:(line + 1) t (idx "p" (i 1));
                 binop fb (t ^ "n") Nvmir.Instr.Add (v t) (i 1);
                 store fb ~line:(line + 2) (idx "p" (i 1)) (v (t ^ "n"));
                 persist fb ~line:(line + 3) (idx "p" (i 1));
                 epoch_end fb ~line:(line + 4) ())
             (List.init ops (fun _ -> Gen.pick r (snd (List.hd Redis_bench.mixes))));
           ret fb ()))
  done;
  fallback_main prog ~file;
  prog

(* ------------------------------------------------------------------ *)
(* YCSB: one undo-logged transaction per mutation against the
   NStore-like record array (the Txstore discipline). *)

let ycsb ?(clients = 4) ?(ops = 6) ?(seed = 1) () =
  let file = "ycsb_fuzz.c" in
  let prog = Nvmir.Prog.create () in
  shared_setup prog ~file ~size:nslots;
  for c = 0 to clients - 1 do
    let r = client_rng seed c in
    ignore
      (func prog ~file
         (Fmt.str "fuzz_client_%d" c)
         [ ("p", Nvmir.Ty.Ptr (Nvmir.Ty.Array (Nvmir.Ty.Int, nslots))) ]
         (fun fb ->
           List.iteri
             (fun j op ->
               let line = (c * 100) + (j * 10) in
               let key = i (Gen.skewed r ~keyspace:nslots ~theta:Ycsb.theta) in
               let t = Fmt.str "t%d" j in
               match op with
               | Ycsb.Update | Ycsb.Insert ->
                 tx_begin fb ~line ();
                 tx_add fb ~line:(line + 1) ~extent:Nvmir.Instr.Exact
                   (idx "p" key);
                 store fb ~line:(line + 2) (idx "p" key) (i (c + 1));
                 tx_end fb ~line:(line + 3) ()
               | Ycsb.Read -> load fb ~line t (idx "p" key)
               | Ycsb.Scan ->
                 load fb ~line t (idx "p" key);
                 load fb ~line:(line + 1) (t ^ "b") (idx "p" (i 0))
               | Ycsb.Rmw ->
                 tx_begin fb ~line ();
                 tx_add fb ~line:(line + 1) ~extent:Nvmir.Instr.Exact
                   (idx "p" key);
                 load fb ~line:(line + 2) t (idx "p" key);
                 binop fb (t ^ "n") Nvmir.Instr.Add (v t) (i 1);
                 store fb ~line:(line + 3) (idx "p" key) (v (t ^ "n"));
                 tx_end fb ~line:(line + 4) ())
             (List.init ops (fun _ -> Gen.pick r (snd (List.hd Ycsb.mixes))));
           ret fb ()))
  done;
  fallback_main prog ~file;
  prog

let all : (string * gen) list =
  [ ("memslap", memslap); ("redis", redis); ("ycsb", ycsb) ]

let find name = List.assoc_opt name all
