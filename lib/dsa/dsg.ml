(* Data Structure Graph construction (§4.2).

   Three phases, mirroring the paper:

   - Local analysis: one pass over each function creating nodes at
     allocation sites, binding pointer variables to nodes, adding
     field-sensitive points-to edges, and recording mod/ref fields.
   - Bottom-up analysis: the call graph is traversed in post-order
     (callees before callers); at each call site, argument nodes are
     unified with the callee's parameter nodes and return values with
     call destinations, so callee effects (mod/ref, persistence,
     points-to structure) become visible to callers.
   - Top-down analysis: caller knowledge (notably: which parameters
     receive persistent objects) flows into callees. With the
     unification-based core, flag propagation is already bidirectional,
     so this phase finalizes the graph: it computes, per function, the
     set of persistent nodes its variables can reach and prunes
     volatile-only bookkeeping from the exported view.

   Deviation from the paper, recorded in DESIGN.md: the original DSA
   clones callee graphs per call site (full context sensitivity); we
   unify at call boundaries instead (context-insensitive, Steensgaard-
   style across calls, field-sensitive throughout). The corpus's helper
   functions have few call sites, so checking precision is unaffected;
   conservatism surfaces as the same kind of false positives §5.4
   discusses.

   Field sensitivity is a build switch so the evaluation can ablate it
   (the paper credits field sensitivity for 31% of the performance
   bugs). Offset sensitivity — symbolic element offsets through pointer
   arithmetic, closing the §5.4 memory-dependence blind spot — is a
   second, independent switch: ablating it reproduces the historical
   behavior where ref-typed [Binop] results were dropped, which the
   injection/fuzzing benches use to regenerate the legacy
   false-negative corpus. *)

type t = {
  arena : Arena.t;
  prog : Nvmir.Prog.t;
  cg : Graphs.Callgraph.t;
  bindings : (string * string, int) Hashtbl.t; (* (fname, var) -> node *)
  offsets : (string * string, Aaddr.offset) Hashtbl.t;
      (* element offset carried by a pointer binding; absent = exactly 0 *)
  ints : (string * string, Aaddr.offset) Hashtbl.t;
      (* integer-valued variables, abstracted in the same congruence
         lattice so [i * 4] feeds strides into pointer offsets *)
  ret_nodes : (string, int) Hashtbl.t;
  ret_offsets : (string, Aaddr.offset) Hashtbl.t;
  cells : (int, ((Arena.field_key * Aaddr.offset) * int) list ref) Hashtbl.t;
      (* field-cell nodes per object node (for address-of) *)
  cell_backref : (int, int * Arena.field_key * Aaddr.offset) Hashtbl.t;
      (* cell node -> (object node, field, element offset) *)
  field_sensitive : bool;
  offset_sensitive : bool;
  mutable recording : bool; (* record mod/ref during local phase only *)
}

let field_sensitive t = t.field_sensitive
let offset_sensitive t = t.offset_sensitive
let arena t = t.arena

let key t f = if t.field_sensitive then Some f else None

let binding t ~fname var = Hashtbl.find_opt t.bindings (fname, var)

let bind t ~fname var node =
  Arena.add_name t.arena node var;
  Hashtbl.replace t.bindings (fname, var) node;
  (* a (re)bind resets the variable to a plain pointer at offset 0 and
     forgets any stale integer abstraction *)
  Hashtbl.remove t.offsets (fname, var);
  Hashtbl.remove t.ints (fname, var)

let binding_or_fresh t ~fname var =
  match binding t ~fname var with
  | Some n -> n
  | None ->
    let n = Arena.fresh t.arena ~unknown:true () in
    bind t ~fname var n;
    n

(* Element offset carried by a pointer binding. Absent means exactly 0 —
   the state of every binding before any pointer arithmetic touches
   it. *)
let var_offset t ~fname var =
  if not t.offset_sensitive then Aaddr.Off_exact 0
  else
    match Hashtbl.find_opt t.offsets (fname, var) with
    | Some o -> o
    | None -> Aaddr.Off_exact 0

let set_var_offset t ~fname var o =
  match o with
  | Aaddr.Off_exact 0 -> Hashtbl.remove t.offsets (fname, var)
  | _ -> Hashtbl.replace t.offsets (fname, var) o

(* Rebinding joins: the bindings table is flow-insensitive, so a
   variable's offset abstracts every value it holds anywhere in the
   function. *)
let join_var_offset t ~fname var o =
  set_var_offset t ~fname var (Aaddr.off_join (var_offset t ~fname var) o)

(* Field cells: distinct nodes denoting the address of object.field, so
   that [x = addr p->f] followed by stores through [x] resolves back to
   writes of p.f. *)
let cell_of t obj_node k off =
  let root = Arena.find t.arena obj_node in
  let cells =
    match Hashtbl.find_opt t.cells root with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.cells root r;
      r
  in
  match List.assoc_opt (k, off) !cells with
  | Some c -> c
  | None ->
    let c = Arena.fresh t.arena () in
    Hashtbl.replace t.cell_backref c (root, k, off);
    cells := ((k, off), c) :: !cells;
    c

let cell_backref t node =
  match Hashtbl.find_opt t.cell_backref (Arena.find t.arena node) with
  | Some (obj, k, off) -> Some (Arena.find t.arena obj, k, off)
  | None ->
    (* the canonical id may differ from the id the backref was filed
       under; scan is acceptable because cells are rare *)
    Hashtbl.fold
      (fun c (obj, k, off) acc ->
        if acc = None && Arena.find t.arena c = Arena.find t.arena node then
          Some (Arena.find t.arena obj, k, off)
        else acc)
      t.cell_backref None

let index_of_operand = function
  | Nvmir.Operand.Const n -> Aaddr.Const_index n
  | Nvmir.Operand.Var v -> Aaddr.Sym_index v
  | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null -> Aaddr.No_index

(* Resolve a place to an abstract address, creating unknown nodes for
   unresolved pointer hops (conservative, per §5.4). The base binding's
   element offset rides on the address as long as resolution stays
   within the base object; any pointer hop through an edge lands on a
   fresh pointee whose offset is exactly 0 again. *)
let resolve t ~fname (place : Nvmir.Place.t) : Aaddr.t =
  let base_node = binding_or_fresh t ~fname (Nvmir.Place.base place) in
  let start_node, carried, base_off =
    match cell_backref t base_node with
    | Some (obj, k, off) -> (obj, k, off)
    | None ->
      ( Arena.find t.arena base_node,
        None,
        var_offset t ~fname (Nvmir.Place.base place) )
  in
  let rec walk node carried off path : Aaddr.t =
    match (path : Nvmir.Place.access list) with
    | [] -> { Aaddr.node; field = carried; index = Aaddr.No_index; offset = off }
    | [ Nvmir.Place.Field f ] -> (
      match carried with
      | None ->
        { Aaddr.node; field = key t f; index = Aaddr.No_index; offset = off }
      | Some cf ->
        (* pointer hop through the carried field, then select f *)
        let next = Arena.ensure_edge t.arena node (Some cf) in
        {
          Aaddr.node = next;
          field = key t f;
          index = Aaddr.No_index;
          offset = Aaddr.Off_exact 0;
        })
    | [ Nvmir.Place.Index i ] ->
      { Aaddr.node; field = carried; index = index_of_operand i; offset = off }
    | [ Nvmir.Place.Field f; Nvmir.Place.Index i ] when carried = None ->
      { Aaddr.node; field = key t f; index = index_of_operand i; offset = off }
    | Nvmir.Place.Field f :: rest ->
      let node, off =
        match carried with
        | None -> (node, off)
        | Some cf -> (Arena.ensure_edge t.arena node (Some cf), Aaddr.Off_exact 0)
      in
      (* a field followed by more accesses: if the next access is an
         index and then nothing, handled above; otherwise this field is
         a pointer we dereference *)
      (match rest with
      | [ Nvmir.Place.Index i ] ->
        { Aaddr.node; field = key t f; index = index_of_operand i; offset = off }
      | _ ->
        walk
          (Arena.ensure_edge t.arena node (key t f))
          None (Aaddr.Off_exact 0) rest)
    | Nvmir.Place.Index _ :: rest ->
      (* indexing stays within the same abstract object *)
      walk node carried off rest
  in
  let addr = walk start_node carried base_off (Nvmir.Place.path place) in
  { addr with Aaddr.node = Arena.find t.arena addr.Aaddr.node }

(* Resolve with a flush extent: [Object] widens the address to the whole
   containing object; [Bytes _] behaves like a whole-buffer flush of the
   addressed region. *)
let resolve_extent t ~fname place (extent : Nvmir.Instr.extent) : Aaddr.t =
  let addr = resolve t ~fname place in
  match extent with
  | Nvmir.Instr.Exact -> addr
  | Nvmir.Instr.Object -> Aaddr.whole addr.Aaddr.node
  | Nvmir.Instr.Bytes _ ->
    (* byte-extent flushes cover the addressed field/buffer; we keep
       the field component so adjacent-object flushes stay disjoint *)
    { addr with Aaddr.index = Aaddr.No_index }

let is_persistent_addr t (a : Aaddr.t) = Arena.is_persistent t.arena a.Aaddr.node

let is_persistent_place t ~fname place =
  is_persistent_addr t (resolve t ~fname place)

let record_mod t (a : Aaddr.t) =
  if t.recording then Arena.add_mod t.arena a.Aaddr.node a.Aaddr.field

let record_ref t (a : Aaddr.t) =
  if t.recording then Arena.add_ref t.arena a.Aaddr.node a.Aaddr.field

(* ------------------------------------------------------------------ *)
(* Phase 1: local analysis *)

let clear_binding t ~fname var =
  Hashtbl.remove t.bindings (fname, var);
  Hashtbl.remove t.offsets (fname, var);
  Hashtbl.remove t.ints (fname, var)

(* Ref-typed [Binop] results — the §5.4 memory-dependence blind spot.
   [q = p + k] binds q to p's node shifted by k elements in the offset
   lattice instead of dropping the result on the floor, so accesses
   through q resolve onto p's object. Integer results stay abstracted
   in the same lattice, which is how [i * 4] later feeds a stride into
   a pointer offset. Ill-typed operand mixes (ref + ref, int - ref,
   ref in mul/div) produce no binding at all: the variable degrades to
   a fresh unknown node on first use, the historical conservative
   treatment — and the interpreter rejects them outright. *)
let local_binop t ~fname dst op lhs rhs =
  let ptr = function
    | Nvmir.Operand.Var v -> (
      match binding t ~fname v with
      | Some n -> Some (n, var_offset t ~fname v)
      | None -> None)
    | Nvmir.Operand.Const _ | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null
      -> None
  in
  let iv = function
    | Nvmir.Operand.Const n -> Aaddr.Off_exact n
    | Nvmir.Operand.Var v -> (
      match Hashtbl.find_opt t.ints (fname, v) with
      | Some o -> o
      | None -> Aaddr.Off_top)
    | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null -> Aaddr.Off_top
  in
  let bind_ptr node off =
    match binding t ~fname dst with
    | Some existing ->
      Arena.unify t.arena existing node;
      Hashtbl.remove t.ints (fname, dst);
      join_var_offset t ~fname dst off
    | None ->
      bind t ~fname dst node;
      set_var_offset t ~fname dst off
  in
  let bind_int o =
    clear_binding t ~fname dst;
    Hashtbl.replace t.ints (fname, dst) o
  in
  match (op : Nvmir.Instr.binop) with
  | Nvmir.Instr.Add -> (
    match (ptr lhs, ptr rhs) with
    | Some (n, o), None -> bind_ptr n (Aaddr.off_add o (iv rhs))
    | None, Some (n, o) -> bind_ptr n (Aaddr.off_add o (iv lhs))
    | Some _, Some _ -> clear_binding t ~fname dst (* ill-typed: ref+ref *)
    | None, None -> bind_int (Aaddr.off_add (iv lhs) (iv rhs)))
  | Nvmir.Instr.Sub -> (
    match (ptr lhs, ptr rhs) with
    | Some (n, o), None -> bind_ptr n (Aaddr.off_sub o (iv rhs))
    | Some (n1, o1), Some (n2, o2) ->
      (* pointer difference: an integer, exact when both offsets are *)
      bind_int
        (if Arena.find t.arena n1 = Arena.find t.arena n2 then
           Aaddr.off_sub o1 o2
         else Aaddr.Off_top)
    | None, Some _ -> clear_binding t ~fname dst (* ill-typed: int-ref *)
    | None, None -> bind_int (Aaddr.off_sub (iv lhs) (iv rhs)))
  | Nvmir.Instr.Mul -> (
    match (ptr lhs, ptr rhs) with
    | None, None -> bind_int (Aaddr.off_mul (iv lhs) (iv rhs))
    | _ -> clear_binding t ~fname dst (* ill-typed: ref in mul *))
  | Nvmir.Instr.Div | Nvmir.Instr.Eq | Nvmir.Instr.Ne | Nvmir.Instr.Lt
  | Nvmir.Instr.Le | Nvmir.Instr.Gt | Nvmir.Instr.Ge | Nvmir.Instr.And
  | Nvmir.Instr.Or ->
    bind_int Aaddr.Off_top

let local_instr t ~fname (i : Nvmir.Instr.t) =
  match i.kind with
  | Nvmir.Instr.Alloc { dst; ty; space } ->
    let persistent = space = Nvmir.Instr.Persistent in
    let pointee =
      match ty with
      | Nvmir.Ty.Ptr inner -> inner
      | other -> other
    in
    let n = Arena.fresh t.arena ~ty:pointee ~persistent ~heap:true () in
    Arena.add_alloc_site t.arena n (fname, i.loc);
    bind t ~fname dst n
  | Nvmir.Instr.Addr_of { dst; src } ->
    let a = resolve t ~fname src in
    let c = cell_of t a.Aaddr.node a.Aaddr.field a.Aaddr.offset in
    bind t ~fname dst c
  | Nvmir.Instr.Store { dst; src } -> (
    let a = resolve t ~fname dst in
    record_mod t a;
    match src with
    | Nvmir.Operand.Var v -> (
      match binding t ~fname v with
      | Some src_node ->
        (* storing a pointer: add/unify the points-to edge *)
        let tgt = Arena.ensure_edge t.arena a.Aaddr.node a.Aaddr.field in
        Arena.unify t.arena tgt src_node
      | None -> ())
    | Nvmir.Operand.Const _ | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null
      -> ())
  | Nvmir.Instr.Load { dst; src } ->
    let a = resolve t ~fname src in
    record_ref t a;
    let tgt = Arena.ensure_edge t.arena a.Aaddr.node a.Aaddr.field in
    bind t ~fname dst tgt
  | Nvmir.Instr.Assign { dst; src } -> (
    match src with
    | Nvmir.Operand.Var v
      when t.offset_sensitive
           && binding t ~fname v = None
           && Hashtbl.mem t.ints (fname, v) ->
      (* integer copy: don't conjure a phantom pointer binding for [v],
         and drop any stale points-to binding of [dst] *)
      clear_binding t ~fname dst;
      Hashtbl.replace t.ints (fname, dst) (Hashtbl.find t.ints (fname, v))
    | Nvmir.Operand.Var v ->
      let n = binding_or_fresh t ~fname v in
      (match binding t ~fname dst with
      | Some existing ->
        Arena.unify t.arena existing n;
        if t.offset_sensitive then
          join_var_offset t ~fname dst (var_offset t ~fname v)
      | None ->
        bind t ~fname dst n;
        if t.offset_sensitive then
          set_var_offset t ~fname dst (var_offset t ~fname v))
    | Nvmir.Operand.Const n when t.offset_sensitive ->
      (* non-pointer reassignment: keeping the old points-to binding
         would make later loads through [dst] alias stale nodes *)
      clear_binding t ~fname dst;
      Hashtbl.replace t.ints (fname, dst) (Aaddr.Off_exact n)
    | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null
      when t.offset_sensitive ->
      clear_binding t ~fname dst
    | Nvmir.Operand.Const _ | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null
      -> ())
  | Nvmir.Instr.Binop { dst; op; lhs; rhs } ->
    if t.offset_sensitive then local_binop t ~fname dst op lhs rhs
  | Nvmir.Instr.Flush { target; extent } | Nvmir.Instr.Persist { target; extent }
    ->
    let a = resolve_extent t ~fname target extent in
    record_ref t a
  | Nvmir.Instr.Tx_add { target; extent } ->
    let a = resolve_extent t ~fname target extent in
    record_ref t a
  (* CRC guards read their range but define an integer/boolean local,
     never a pointer *)
  | Nvmir.Instr.Crc_of { dst; target; extent } ->
    let a = resolve_extent t ~fname target extent in
    record_ref t a;
    if t.offset_sensitive then clear_binding t ~fname dst
  | Nvmir.Instr.Crc_check { dst; target; extent; crc } ->
    let a = resolve_extent t ~fname target extent in
    record_ref t a;
    record_ref t (resolve t ~fname crc);
    if t.offset_sensitive then clear_binding t ~fname dst
  | Nvmir.Instr.Fence | Nvmir.Instr.Tx_begin
  | Nvmir.Instr.Tx_end | Nvmir.Instr.Epoch_begin | Nvmir.Instr.Epoch_end
  | Nvmir.Instr.Strand_begin _ | Nvmir.Instr.Strand_end _ | Nvmir.Instr.Call _
  | Nvmir.Instr.Comment _ -> ()

let local_phase t =
  t.recording <- true;
  List.iter
    (fun (f : Nvmir.Func.t) ->
      let fname = Nvmir.Func.name f in
      (* parameters: fresh nodes for pointer-typed parameters *)
      List.iter
        (fun (p, ty) ->
          match ty with
          | Nvmir.Ty.Ptr pointee ->
            let n = Arena.fresh t.arena ~ty:pointee () in
            bind t ~fname p n
          | Nvmir.Ty.Int | Nvmir.Ty.Bool | Nvmir.Ty.Named _
          | Nvmir.Ty.Array _ -> ())
        f.params;
      Nvmir.Func.iter_instrs (fun _lbl i -> local_instr t ~fname i) f;
      (* return node, if the function returns a bound pointer *)
      List.iter
        (fun (b : Nvmir.Func.block) ->
          match b.term with
          | Nvmir.Func.Ret (Some (Nvmir.Operand.Var v)) -> (
            match binding t ~fname v with
            | Some n ->
              (match Hashtbl.find_opt t.ret_nodes fname with
              | Some existing -> Arena.unify t.arena existing n
              | None -> Hashtbl.replace t.ret_nodes fname n);
              if t.offset_sensitive then
                Hashtbl.replace t.ret_offsets fname
                  (match Hashtbl.find_opt t.ret_offsets fname with
                  | Some o -> Aaddr.off_join o (var_offset t ~fname v)
                  | None -> var_offset t ~fname v)
            | None -> ())
          | Nvmir.Func.Ret _ | Nvmir.Func.Br _ | Nvmir.Func.Cond_br _ -> ())
        f.blocks)
    (Nvmir.Prog.funcs t.prog);
  t.recording <- false

(* ------------------------------------------------------------------ *)
(* Phase 2: bottom-up analysis *)

let apply_call_site t ~caller (i : Nvmir.Instr.t) =
  match i.kind with
  | Nvmir.Instr.Call { dst; callee; args } -> (
    match Nvmir.Prog.find_func t.prog callee with
    | None -> () (* external function: no summary *)
    | Some cf ->
      let params = cf.params in
      List.iteri
        (fun idx arg ->
          match (arg, List.nth_opt params idx) with
          | Nvmir.Operand.Var v, Some (p, Nvmir.Ty.Ptr _) ->
            let arg_node = binding_or_fresh t ~fname:caller v in
            let param_node = binding_or_fresh t ~fname:callee p in
            Arena.unify t.arena arg_node param_node;
            (* an argument carrying a nonzero element offset widens the
               parameter's offset (idempotent across repeat visits) *)
            if t.offset_sensitive then begin
              match var_offset t ~fname:caller v with
              | Aaddr.Off_exact 0 -> ()
              | o -> join_var_offset t ~fname:callee p o
            end
          | _, _ -> ())
        args;
      match (dst, Hashtbl.find_opt t.ret_nodes callee) with
      | Some d, Some rn ->
        let ret_off () =
          match Hashtbl.find_opt t.ret_offsets callee with
          | Some o -> o
          | None -> Aaddr.Off_exact 0
        in
        (match binding t ~fname:caller d with
        | Some existing ->
          Arena.unify t.arena existing rn;
          if t.offset_sensitive then
            join_var_offset t ~fname:caller d (ret_off ())
        | None ->
          bind t ~fname:caller d rn;
          if t.offset_sensitive then
            set_var_offset t ~fname:caller d (ret_off ()))
      | _, _ -> ())
  | _ -> ()

let bottom_up_phase t =
  List.iter
    (fun fname ->
      match Nvmir.Prog.find_func t.prog fname with
      | None -> ()
      | Some f ->
        Nvmir.Func.iter_instrs (fun _lbl i -> apply_call_site t ~caller:fname i) f)
    (Graphs.Callgraph.postorder t.cg)

(* ------------------------------------------------------------------ *)
(* Phase 3: top-down analysis *)

(* With unification the persistence flags have already flowed through
   call boundaries in both directions. The top-down pass revisits call
   sites in reverse post-order (callers first) to catch bindings created
   late during phase 2, then propagates persistence through field cells:
   a cell addressing a field of a persistent object is itself
   persistent. *)
let top_down_phase t =
  let order = List.rev (Graphs.Callgraph.postorder t.cg) in
  List.iter
    (fun fname ->
      match Nvmir.Prog.find_func t.prog fname with
      | None -> ()
      | Some f ->
        Nvmir.Func.iter_instrs (fun _lbl i -> apply_call_site t ~caller:fname i) f)
    order;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun cell (obj, _k, _off) ->
        if
          Arena.is_persistent t.arena obj
          && not (Arena.is_persistent t.arena cell)
        then begin
          Arena.set_persistent t.arena cell;
          changed := true
        end)
      t.cell_backref;
    (* persistence also flows along points-to edges out of persistent
       objects' pointer fields when the target was heap-allocated from
       pmem elsewhere; unification already covers the common case. *)
  done

(* ------------------------------------------------------------------ *)

(* [persistent_roots] marks additional variables as pointing to
   persistent memory — the "interface annotations" of §4.1 by which
   users tell DeepMC which externally-created objects live in NVM.
   Each entry is (function, variable). *)
let build ?(field_sensitive = true) ?(offset_sensitive = true)
    ?(persistent_roots = []) prog =
  let t =
    {
      arena = Arena.create ();
      prog;
      cg = Graphs.Callgraph.of_prog prog;
      bindings = Hashtbl.create 64;
      offsets = Hashtbl.create 16;
      ints = Hashtbl.create 16;
      ret_nodes = Hashtbl.create 16;
      ret_offsets = Hashtbl.create 16;
      cells = Hashtbl.create 16;
      cell_backref = Hashtbl.create 16;
      field_sensitive;
      offset_sensitive;
      recording = false;
    }
  in
  local_phase t;
  List.iter
    (fun (fname, var) ->
      let n = binding_or_fresh t ~fname var in
      Arena.set_persistent t.arena n)
    persistent_roots;
  bottom_up_phase t;
  top_down_phase t;
  t

(* ------------------------------------------------------------------ *)
(* Queries and dumps *)

let node_of_var t ~fname var =
  Option.map (Arena.find t.arena) (binding t ~fname var)

let may_alias t ~fname p1 p2 =
  Aaddr.may_overlap (resolve t ~fname p1) (resolve t ~fname p2)

let modified_fields t node = (Arena.canonical t.arena node).Arena.mod_fields
let referenced_fields t node = (Arena.canonical t.arena node).Arena.ref_fields

(* Nodes a function's variables can reach, persistent ones only: the
   per-function DSG view of Figure 10. *)
let function_view t ~fname =
  let seen = Hashtbl.create 16 in
  let rec visit node =
    let root = Arena.find t.arena node in
    if not (Hashtbl.mem seen root) then begin
      Hashtbl.replace seen root ();
      let n = Arena.canonical t.arena root in
      List.iter (fun (_, tgt) -> visit tgt) n.Arena.edges
    end
  in
  Hashtbl.iter
    (fun (fn, _var) node -> if String.equal fn fname then visit node)
    t.bindings;
  Hashtbl.fold
    (fun node () acc ->
      if Arena.is_persistent t.arena node then node :: acc else acc)
    seen []
  |> List.sort Int.compare

let pp_function_view ppf (t, fname) =
  let nodes = function_view t ~fname in
  Fmt.pf ppf "@[<v>DSG of %s (%d persistent node(s))@ %a@]" fname
    (List.length nodes)
    Fmt.(list ~sep:(any "@ ") (fun ppf n -> Arena.pp_node t.arena ppf n))
    nodes

(* Per-function summary hash: everything the rules can observe about
   this function's slice of the DSG. Raw canonical ids go into the
   digest deliberately — warning messages embed them via Aaddr.pp, so
   two builds must agree on ids before any cached warning text may be
   replayed (an id shift is a spurious miss, never a wrong hit). *)
let summary_hash t ~fname =
  let open Nvmir in
  let fk h = function None -> Chash.add_string h "_" | Some f -> Chash.add_string h f in
  let h =
    List.fold_left
      (fun h id ->
        let n = Arena.canonical t.arena id in
        let h = Chash.add_int h n.Arena.id in
        let h =
          match n.Arena.ty with
          | None -> Chash.add_string h "?"
          | Some ty -> Chash.add_string h (Fmt.str "%a" Ty.pp ty)
        in
        let h = Chash.add_int h (if n.Arena.persistent then 1 else 0) in
        let h = List.fold_left fk h (List.sort compare n.Arena.mod_fields) in
        let h = Chash.add_char h '/' in
        let h = List.fold_left fk h (List.sort compare n.Arena.ref_fields) in
        let h = Chash.add_char h '/' in
        List.fold_left
          (fun h (k, tgt) -> Chash.add_int (fk h k) (Arena.find t.arena tgt))
          h
          (List.sort compare n.Arena.edges))
      (Chash.add_string Chash.empty fname)
      (function_view t ~fname)
  in
  (* Nonzero binding offsets change how this function's places resolve,
     so they are part of the observable summary — a warm cache hit with
     different offsets would replay stale warnings. Offset-free
     functions digest nothing extra, keeping their keys stable across
     the introduction of offsets. *)
  let off_digest h (v, o) =
    let h = Chash.add_string h v in
    match o with
    | Aaddr.Off_exact n -> Chash.add_int (Chash.add_char h 'e') n
    | Aaddr.Off_stride { base; stride } ->
      Chash.add_int (Chash.add_int (Chash.add_char h 's') base) stride
    | Aaddr.Off_top -> Chash.add_char h 't'
  in
  Hashtbl.fold
    (fun (fn, v) o acc -> if String.equal fn fname then (v, o) :: acc else acc)
    t.offsets []
  |> List.sort compare
  |> List.fold_left off_digest h
