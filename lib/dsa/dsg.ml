(* Data Structure Graph construction (§4.2).

   Three phases, mirroring the paper:

   - Local analysis: one pass over each function creating nodes at
     allocation sites, binding pointer variables to nodes, adding
     field-sensitive points-to edges, and recording mod/ref fields.
   - Bottom-up analysis: the call graph is traversed in post-order
     (callees before callers); at each call site, argument nodes are
     unified with the callee's parameter nodes and return values with
     call destinations, so callee effects (mod/ref, persistence,
     points-to structure) become visible to callers.
   - Top-down analysis: caller knowledge (notably: which parameters
     receive persistent objects) flows into callees. With the
     unification-based core, flag propagation is already bidirectional,
     so this phase finalizes the graph: it computes, per function, the
     set of persistent nodes its variables can reach and prunes
     volatile-only bookkeeping from the exported view.

   Deviation from the paper, recorded in DESIGN.md: the original DSA
   clones callee graphs per call site (full context sensitivity); we
   unify at call boundaries instead (context-insensitive, Steensgaard-
   style across calls, field-sensitive throughout). The corpus's helper
   functions have few call sites, so checking precision is unaffected;
   conservatism surfaces as the same kind of false positives §5.4
   discusses.

   Field sensitivity is a build switch so the evaluation can ablate it
   (the paper credits field sensitivity for 31% of the performance
   bugs). *)

type t = {
  arena : Arena.t;
  prog : Nvmir.Prog.t;
  cg : Graphs.Callgraph.t;
  bindings : (string * string, int) Hashtbl.t; (* (fname, var) -> node *)
  ret_nodes : (string, int) Hashtbl.t;
  cells : (int, (Arena.field_key * int) list ref) Hashtbl.t;
      (* field-cell nodes per object node (for address-of) *)
  cell_backref : (int, int * Arena.field_key) Hashtbl.t;
      (* cell node -> (object node, field) *)
  field_sensitive : bool;
  mutable recording : bool; (* record mod/ref during local phase only *)
}

let field_sensitive t = t.field_sensitive
let arena t = t.arena

let key t f = if t.field_sensitive then Some f else None

let binding t ~fname var = Hashtbl.find_opt t.bindings (fname, var)

let bind t ~fname var node =
  Arena.add_name t.arena node var;
  Hashtbl.replace t.bindings (fname, var) node

let binding_or_fresh t ~fname var =
  match binding t ~fname var with
  | Some n -> n
  | None ->
    let n = Arena.fresh t.arena ~unknown:true () in
    bind t ~fname var n;
    n

(* Field cells: distinct nodes denoting the address of object.field, so
   that [x = addr p->f] followed by stores through [x] resolves back to
   writes of p.f. *)
let cell_of t obj_node k =
  let root = Arena.find t.arena obj_node in
  let cells =
    match Hashtbl.find_opt t.cells root with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.cells root r;
      r
  in
  match List.assoc_opt k !cells with
  | Some c -> c
  | None ->
    let c = Arena.fresh t.arena () in
    Hashtbl.replace t.cell_backref c (root, k);
    cells := (k, c) :: !cells;
    c

let cell_backref t node =
  match Hashtbl.find_opt t.cell_backref (Arena.find t.arena node) with
  | Some (obj, k) -> Some (Arena.find t.arena obj, k)
  | None ->
    (* the canonical id may differ from the id the backref was filed
       under; scan is acceptable because cells are rare *)
    Hashtbl.fold
      (fun c br acc ->
        if acc = None && Arena.find t.arena c = Arena.find t.arena node then
          Some (Arena.find t.arena (fst br), snd br)
        else acc)
      t.cell_backref None

let index_of_operand = function
  | Nvmir.Operand.Const n -> Aaddr.Const_index n
  | Nvmir.Operand.Var v -> Aaddr.Sym_index v
  | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null -> Aaddr.No_index

(* Resolve a place to an abstract address, creating unknown nodes for
   unresolved pointer hops (conservative, per §5.4). *)
let resolve t ~fname (place : Nvmir.Place.t) : Aaddr.t =
  let base_node = binding_or_fresh t ~fname (Nvmir.Place.base place) in
  let start_node, carried =
    match cell_backref t base_node with
    | Some (obj, k) -> (obj, k)
    | None -> (Arena.find t.arena base_node, None)
  in
  let rec walk node carried path : Aaddr.t =
    match (path : Nvmir.Place.access list) with
    | [] -> { Aaddr.node; field = carried; index = Aaddr.No_index }
    | [ Nvmir.Place.Field f ] -> (
      match carried with
      | None -> { Aaddr.node; field = key t f; index = Aaddr.No_index }
      | Some cf ->
        (* pointer hop through the carried field, then select f *)
        let next = Arena.ensure_edge t.arena node (Some cf) in
        { Aaddr.node = next; field = key t f; index = Aaddr.No_index })
    | [ Nvmir.Place.Index i ] ->
      { Aaddr.node; field = carried; index = index_of_operand i }
    | [ Nvmir.Place.Field f; Nvmir.Place.Index i ] when carried = None ->
      { Aaddr.node; field = key t f; index = index_of_operand i }
    | Nvmir.Place.Field f :: rest ->
      let node =
        match carried with
        | None -> node
        | Some cf -> Arena.ensure_edge t.arena node (Some cf)
      in
      (* a field followed by more accesses: if the next access is an
         index and then nothing, handled above; otherwise this field is
         a pointer we dereference *)
      (match rest with
      | [ Nvmir.Place.Index i ] ->
        { Aaddr.node; field = key t f; index = index_of_operand i }
      | _ -> walk (Arena.ensure_edge t.arena node (key t f)) None rest)
    | Nvmir.Place.Index _ :: rest ->
      (* indexing stays within the same abstract object *)
      walk node carried rest
  in
  let addr = walk start_node carried (Nvmir.Place.path place) in
  { addr with Aaddr.node = Arena.find t.arena addr.Aaddr.node }

(* Resolve with a flush extent: [Object] widens the address to the whole
   containing object; [Bytes _] behaves like a whole-buffer flush of the
   addressed region. *)
let resolve_extent t ~fname place (extent : Nvmir.Instr.extent) : Aaddr.t =
  let addr = resolve t ~fname place in
  match extent with
  | Nvmir.Instr.Exact -> addr
  | Nvmir.Instr.Object -> Aaddr.whole addr.Aaddr.node
  | Nvmir.Instr.Bytes _ ->
    (* byte-extent flushes cover the addressed field/buffer; we keep
       the field component so adjacent-object flushes stay disjoint *)
    { addr with Aaddr.index = Aaddr.No_index }

let is_persistent_addr t (a : Aaddr.t) = Arena.is_persistent t.arena a.Aaddr.node

let is_persistent_place t ~fname place =
  is_persistent_addr t (resolve t ~fname place)

let record_mod t (a : Aaddr.t) =
  if t.recording then Arena.add_mod t.arena a.Aaddr.node a.Aaddr.field

let record_ref t (a : Aaddr.t) =
  if t.recording then Arena.add_ref t.arena a.Aaddr.node a.Aaddr.field

(* ------------------------------------------------------------------ *)
(* Phase 1: local analysis *)

let local_instr t ~fname (i : Nvmir.Instr.t) =
  match i.kind with
  | Nvmir.Instr.Alloc { dst; ty; space } ->
    let persistent = space = Nvmir.Instr.Persistent in
    let pointee =
      match ty with
      | Nvmir.Ty.Ptr inner -> inner
      | other -> other
    in
    let n = Arena.fresh t.arena ~ty:pointee ~persistent ~heap:true () in
    Arena.add_alloc_site t.arena n (fname, i.loc);
    bind t ~fname dst n
  | Nvmir.Instr.Addr_of { dst; src } ->
    let a = resolve t ~fname src in
    let c = cell_of t a.Aaddr.node a.Aaddr.field in
    bind t ~fname dst c
  | Nvmir.Instr.Store { dst; src } -> (
    let a = resolve t ~fname dst in
    record_mod t a;
    match src with
    | Nvmir.Operand.Var v -> (
      match binding t ~fname v with
      | Some src_node ->
        (* storing a pointer: add/unify the points-to edge *)
        let tgt = Arena.ensure_edge t.arena a.Aaddr.node a.Aaddr.field in
        Arena.unify t.arena tgt src_node
      | None -> ())
    | Nvmir.Operand.Const _ | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null
      -> ())
  | Nvmir.Instr.Load { dst; src } ->
    let a = resolve t ~fname src in
    record_ref t a;
    let tgt = Arena.ensure_edge t.arena a.Aaddr.node a.Aaddr.field in
    bind t ~fname dst tgt
  | Nvmir.Instr.Assign { dst; src } -> (
    match src with
    | Nvmir.Operand.Var v ->
      let n = binding_or_fresh t ~fname v in
      (match binding t ~fname dst with
      | Some existing -> Arena.unify t.arena existing n
      | None -> bind t ~fname dst n)
    | Nvmir.Operand.Const _ | Nvmir.Operand.Bool_const _ | Nvmir.Operand.Null
      -> ())
  | Nvmir.Instr.Flush { target; extent } | Nvmir.Instr.Persist { target; extent }
    ->
    let a = resolve_extent t ~fname target extent in
    record_ref t a
  | Nvmir.Instr.Tx_add { target; extent } ->
    let a = resolve_extent t ~fname target extent in
    record_ref t a
  | Nvmir.Instr.Binop _ | Nvmir.Instr.Fence | Nvmir.Instr.Tx_begin
  | Nvmir.Instr.Tx_end | Nvmir.Instr.Epoch_begin | Nvmir.Instr.Epoch_end
  | Nvmir.Instr.Strand_begin _ | Nvmir.Instr.Strand_end _ | Nvmir.Instr.Call _
  | Nvmir.Instr.Comment _ -> ()

let local_phase t =
  t.recording <- true;
  List.iter
    (fun (f : Nvmir.Func.t) ->
      let fname = Nvmir.Func.name f in
      (* parameters: fresh nodes for pointer-typed parameters *)
      List.iter
        (fun (p, ty) ->
          match ty with
          | Nvmir.Ty.Ptr pointee ->
            let n = Arena.fresh t.arena ~ty:pointee () in
            bind t ~fname p n
          | Nvmir.Ty.Int | Nvmir.Ty.Bool | Nvmir.Ty.Named _
          | Nvmir.Ty.Array _ -> ())
        f.params;
      Nvmir.Func.iter_instrs (fun _lbl i -> local_instr t ~fname i) f;
      (* return node, if the function returns a bound pointer *)
      List.iter
        (fun (b : Nvmir.Func.block) ->
          match b.term with
          | Nvmir.Func.Ret (Some (Nvmir.Operand.Var v)) -> (
            match binding t ~fname v with
            | Some n -> (
              match Hashtbl.find_opt t.ret_nodes fname with
              | Some existing -> Arena.unify t.arena existing n
              | None -> Hashtbl.replace t.ret_nodes fname n)
            | None -> ())
          | Nvmir.Func.Ret _ | Nvmir.Func.Br _ | Nvmir.Func.Cond_br _ -> ())
        f.blocks)
    (Nvmir.Prog.funcs t.prog);
  t.recording <- false

(* ------------------------------------------------------------------ *)
(* Phase 2: bottom-up analysis *)

let apply_call_site t ~caller (i : Nvmir.Instr.t) =
  match i.kind with
  | Nvmir.Instr.Call { dst; callee; args } -> (
    match Nvmir.Prog.find_func t.prog callee with
    | None -> () (* external function: no summary *)
    | Some cf ->
      let params = cf.params in
      List.iteri
        (fun idx arg ->
          match (arg, List.nth_opt params idx) with
          | Nvmir.Operand.Var v, Some (p, Nvmir.Ty.Ptr _) ->
            let arg_node = binding_or_fresh t ~fname:caller v in
            let param_node = binding_or_fresh t ~fname:callee p in
            Arena.unify t.arena arg_node param_node
          | _, _ -> ())
        args;
      match (dst, Hashtbl.find_opt t.ret_nodes callee) with
      | Some d, Some rn -> (
        match binding t ~fname:caller d with
        | Some existing -> Arena.unify t.arena existing rn
        | None -> bind t ~fname:caller d rn)
      | _, _ -> ())
  | _ -> ()

let bottom_up_phase t =
  List.iter
    (fun fname ->
      match Nvmir.Prog.find_func t.prog fname with
      | None -> ()
      | Some f ->
        Nvmir.Func.iter_instrs (fun _lbl i -> apply_call_site t ~caller:fname i) f)
    (Graphs.Callgraph.postorder t.cg)

(* ------------------------------------------------------------------ *)
(* Phase 3: top-down analysis *)

(* With unification the persistence flags have already flowed through
   call boundaries in both directions. The top-down pass revisits call
   sites in reverse post-order (callers first) to catch bindings created
   late during phase 2, then propagates persistence through field cells:
   a cell addressing a field of a persistent object is itself
   persistent. *)
let top_down_phase t =
  let order = List.rev (Graphs.Callgraph.postorder t.cg) in
  List.iter
    (fun fname ->
      match Nvmir.Prog.find_func t.prog fname with
      | None -> ()
      | Some f ->
        Nvmir.Func.iter_instrs (fun _lbl i -> apply_call_site t ~caller:fname i) f)
    order;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun cell (obj, _k) ->
        if
          Arena.is_persistent t.arena obj
          && not (Arena.is_persistent t.arena cell)
        then begin
          Arena.set_persistent t.arena cell;
          changed := true
        end)
      t.cell_backref;
    (* persistence also flows along points-to edges out of persistent
       objects' pointer fields when the target was heap-allocated from
       pmem elsewhere; unification already covers the common case. *)
  done

(* ------------------------------------------------------------------ *)

(* [persistent_roots] marks additional variables as pointing to
   persistent memory — the "interface annotations" of §4.1 by which
   users tell DeepMC which externally-created objects live in NVM.
   Each entry is (function, variable). *)
let build ?(field_sensitive = true) ?(persistent_roots = []) prog =
  let t =
    {
      arena = Arena.create ();
      prog;
      cg = Graphs.Callgraph.of_prog prog;
      bindings = Hashtbl.create 64;
      ret_nodes = Hashtbl.create 16;
      cells = Hashtbl.create 16;
      cell_backref = Hashtbl.create 16;
      field_sensitive;
      recording = false;
    }
  in
  local_phase t;
  List.iter
    (fun (fname, var) ->
      let n = binding_or_fresh t ~fname var in
      Arena.set_persistent t.arena n)
    persistent_roots;
  bottom_up_phase t;
  top_down_phase t;
  t

(* ------------------------------------------------------------------ *)
(* Queries and dumps *)

let node_of_var t ~fname var =
  Option.map (Arena.find t.arena) (binding t ~fname var)

let may_alias t ~fname p1 p2 =
  Aaddr.may_overlap (resolve t ~fname p1) (resolve t ~fname p2)

let modified_fields t node = (Arena.canonical t.arena node).Arena.mod_fields
let referenced_fields t node = (Arena.canonical t.arena node).Arena.ref_fields

(* Nodes a function's variables can reach, persistent ones only: the
   per-function DSG view of Figure 10. *)
let function_view t ~fname =
  let seen = Hashtbl.create 16 in
  let rec visit node =
    let root = Arena.find t.arena node in
    if not (Hashtbl.mem seen root) then begin
      Hashtbl.replace seen root ();
      let n = Arena.canonical t.arena root in
      List.iter (fun (_, tgt) -> visit tgt) n.Arena.edges
    end
  in
  Hashtbl.iter
    (fun (fn, _var) node -> if String.equal fn fname then visit node)
    t.bindings;
  Hashtbl.fold
    (fun node () acc ->
      if Arena.is_persistent t.arena node then node :: acc else acc)
    seen []
  |> List.sort Int.compare

let pp_function_view ppf (t, fname) =
  let nodes = function_view t ~fname in
  Fmt.pf ppf "@[<v>DSG of %s (%d persistent node(s))@ %a@]" fname
    (List.length nodes)
    Fmt.(list ~sep:(any "@ ") (fun ppf n -> Arena.pp_node t.arena ppf n))
    nodes

(* Per-function summary hash: everything the rules can observe about
   this function's slice of the DSG. Raw canonical ids go into the
   digest deliberately — warning messages embed them via Aaddr.pp, so
   two builds must agree on ids before any cached warning text may be
   replayed (an id shift is a spurious miss, never a wrong hit). *)
let summary_hash t ~fname =
  let open Nvmir in
  let fk h = function None -> Chash.add_string h "_" | Some f -> Chash.add_string h f in
  List.fold_left
    (fun h id ->
      let n = Arena.canonical t.arena id in
      let h = Chash.add_int h n.Arena.id in
      let h =
        match n.Arena.ty with
        | None -> Chash.add_string h "?"
        | Some ty -> Chash.add_string h (Fmt.str "%a" Ty.pp ty)
      in
      let h = Chash.add_int h (if n.Arena.persistent then 1 else 0) in
      let h = List.fold_left fk h (List.sort compare n.Arena.mod_fields) in
      let h = Chash.add_char h '/' in
      let h = List.fold_left fk h (List.sort compare n.Arena.ref_fields) in
      let h = Chash.add_char h '/' in
      List.fold_left
        (fun h (k, tgt) -> Chash.add_int (fk h k) (Arena.find t.arena tgt))
        h
        (List.sort compare n.Arena.edges))
    (Chash.add_string Chash.empty fname)
    (function_view t ~fname)
