(** Data Structure Graph construction (§4.2): local, bottom-up, and
    top-down phases producing a field-sensitive, persistence-aware alias
    summary of the whole program.

    Deviation from the paper (see DESIGN.md): calls unify argument and
    parameter nodes instead of cloning callee graphs, trading context
    sensitivity for simplicity; field sensitivity and offset
    sensitivity are build switches so the evaluation can ablate
    them. *)

type t

val build :
  ?field_sensitive:bool ->
  ?offset_sensitive:bool ->
  ?persistent_roots:(string * string) list ->
  Nvmir.Prog.t ->
  t
(** Run all three phases. [persistent_roots] are interface annotations:
    (function, variable) pairs known to reference NVM.
    [offset_sensitive] (default true) tracks ref-typed [Binop] results
    as element offsets in the {!Aaddr.offset} congruence lattice;
    ablating it reproduces the historical §5.4 pointer-arith blind
    spot (used by the injection/fuzzing benches to regenerate the
    legacy false-negative corpus). *)

val field_sensitive : t -> bool
val offset_sensitive : t -> bool
val arena : t -> Arena.t

val resolve : t -> fname:string -> Nvmir.Place.t -> Aaddr.t
(** Resolve a place to an abstract address, creating conservative
    unknown nodes for unresolved pointer hops. *)

val resolve_extent :
  t -> fname:string -> Nvmir.Place.t -> Nvmir.Instr.extent -> Aaddr.t
(** Like {!resolve}, widened by a flush extent ([Object] covers the
    whole containing object). *)

val is_persistent_addr : t -> Aaddr.t -> bool
val is_persistent_place : t -> fname:string -> Nvmir.Place.t -> bool

val node_of_var : t -> fname:string -> string -> int option
(** The canonical node a variable points to, if bound. *)

val may_alias : t -> fname:string -> Nvmir.Place.t -> Nvmir.Place.t -> bool
val modified_fields : t -> int -> Arena.field_key list
val referenced_fields : t -> int -> Arena.field_key list

val function_view : t -> fname:string -> int list
(** The persistent nodes a function's variables can reach: the
    per-function DSG of Figure 10. *)

val pp_function_view : (t * string) Fmt.t

val summary_hash : t -> fname:string -> Nvmir.Chash.t
(** Content key over the function's DSG slice: every persistent node it
    can reach, with canonical id, pointee type, persistence, sorted
    mod/ref field sets, and outgoing edges. Raw canonical ids are
    digested on purpose: warning text embeds them ({!Aaddr.pp}), so a
    cached warning may only be replayed when ids match exactly — an id
    shift across rebuilds is a spurious cache miss, never a wrong hit.
    Nonzero binding offsets are digested too: they change how the
    function's places resolve, so a warm hit across an offset change
    would be stale. *)

(** {1 Phases} — exposed for tests; [build] runs them in order *)

val local_phase : t -> unit
val bottom_up_phase : t -> unit
val top_down_phase : t -> unit
