(* Node arena with union-find for the Data Structure Graph.

   Each node abstracts one (set of) runtime object(s). Nodes are merged
   Steensgaard-style when the analysis discovers they may be the same
   object (assignments, call-boundary parameter binding). Merging unions
   attribute flags, alloc sites, mod/ref field sets, and recursively
   unifies points-to edges.

   Field edges are keyed by field name ([Some f]) or by the anonymous
   key [None] when field sensitivity is disabled — the ablation switch
   the evaluation uses to show why field sensitivity matters. *)

type field_key = string option

type node = {
  id : int;
  mutable parent : int; (* union-find parent; self when canonical *)
  mutable rank : int;
  mutable ty : Nvmir.Ty.t option; (* pointee type, when known *)
  mutable persistent : bool; (* allocated from / proven to be in NVM *)
  mutable heap : bool; (* created at an allocation site *)
  mutable unknown : bool; (* synthesized for unresolved pointers *)
  mutable alloc_sites : (string * Nvmir.Loc.t) list;
  mutable edges : (field_key * int) list; (* points-to, per field *)
  mutable mod_fields : field_key list; (* fields written through this node *)
  mutable ref_fields : field_key list; (* fields read through this node *)
  mutable names : string list; (* variables known to point here, for dumps *)
}

type t = { nodes : (int, node) Hashtbl.t; mutable len : int }

let create () = { nodes = Hashtbl.create 64; len = 0 }

let node t id = Hashtbl.find t.nodes id

let fresh t ?ty ?(persistent = false) ?(heap = false) ?(unknown = false) () =
  let id = t.len in
  let n =
    {
      id;
      parent = id;
      rank = 0;
      ty;
      persistent;
      heap;
      unknown;
      alloc_sites = [];
      edges = [];
      mod_fields = [];
      ref_fields = [];
      names = [];
    }
  in
  Hashtbl.replace t.nodes id n;
  t.len <- t.len + 1;
  id

(* The write is guarded so that after [compress] a fully-compressed
   arena answers [find] without mutating — concurrent readers (the
   parallel per-root checking phase) then never race on [parent]. *)
let rec find t id =
  let n = node t id in
  if n.parent = id then id
  else begin
    let root = find t n.parent in
    if n.parent <> root then n.parent <- root;
    root
  end

(* Point every node directly at its canonical representative. Once all
   unions are done, this freezes the union-find: subsequent [find]s are
   pure lookups, safe to issue from multiple domains. *)
let compress t =
  for i = 0 to t.len - 1 do
    ignore (find t i)
  done

let canonical t id = node t (find t id)

let union_list a b =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) a b

(* Unify two nodes, merging attributes and recursively unifying the
   points-to targets of matching field edges. *)
let rec unify t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let na = node t ra and nb = node t rb in
    let winner, loser = if na.rank >= nb.rank then (na, nb) else (nb, na) in
    loser.parent <- winner.id;
    if winner.rank = loser.rank then winner.rank <- winner.rank + 1;
    winner.ty <- (match winner.ty with None -> loser.ty | Some _ -> winner.ty);
    winner.persistent <- winner.persistent || loser.persistent;
    winner.heap <- winner.heap || loser.heap;
    winner.unknown <- winner.unknown && loser.unknown;
    winner.alloc_sites <- union_list winner.alloc_sites loser.alloc_sites;
    winner.mod_fields <- union_list winner.mod_fields loser.mod_fields;
    winner.ref_fields <- union_list winner.ref_fields loser.ref_fields;
    winner.names <- union_list winner.names loser.names;
    (* merge edges: same key -> unify targets *)
    let pending = loser.edges in
    loser.edges <- [];
    List.iter
      (fun (key, target) ->
        match List.assoc_opt key winner.edges with
        | Some existing -> unify t existing target
        | None -> winner.edges <- (key, target) :: winner.edges)
      pending
  end

(* Follow (or create) the points-to edge for a field. *)
let edge_target t id key =
  let n = canonical t id in
  match List.assoc_opt key n.edges with
  | Some target -> Some (find t target)
  | None -> None

let ensure_edge t id key =
  let n = canonical t id in
  match List.assoc_opt key n.edges with
  | Some target -> find t target
  | None ->
    let target = fresh t ~unknown:true () in
    n.edges <- (key, target) :: n.edges;
    target

let set_persistent t id =
  (canonical t id).persistent <- true

let is_persistent t id = (canonical t id).persistent

let add_mod t id key =
  let n = canonical t id in
  if not (List.mem key n.mod_fields) then n.mod_fields <- key :: n.mod_fields

let add_ref t id key =
  let n = canonical t id in
  if not (List.mem key n.ref_fields) then n.ref_fields <- key :: n.ref_fields

let add_name t id name =
  let n = canonical t id in
  if not (List.mem name n.names) then n.names <- name :: n.names

let add_alloc_site t id site =
  let n = canonical t id in
  if not (List.mem site n.alloc_sites) then
    n.alloc_sites <- site :: n.alloc_sites

let canonical_ids t =
  let rec collect acc i =
    if i >= t.len then List.rev acc
    else if find t i = i then collect (i :: acc) (i + 1)
    else collect acc (i + 1)
  in
  collect [] 0

let size t = t.len

let pp_field_key ppf = function
  | None -> Fmt.string ppf "*"
  | Some f -> Fmt.string ppf f

let pp_node t ppf id =
  let n = canonical t id in
  let pp_edge ppf (k, tgt) = Fmt.pf ppf "%a -> n%d" pp_field_key k (find t tgt) in
  Fmt.pf ppf "@[<v 2>n%d%s%s%s [%a]@ ty: %a@ edges: %a@ mod: {%a} ref: {%a}@]"
    n.id
    (if n.persistent then " pmem" else "")
    (if n.heap then " heap" else "")
    (if n.unknown then " unknown" else "")
    Fmt.(list ~sep:(any ", ") string)
    n.names
    Fmt.(option ~none:(any "?") Nvmir.Ty.pp)
    n.ty
    Fmt.(list ~sep:(any ", ") pp_edge)
    n.edges
    Fmt.(list ~sep:(any ", ") pp_field_key)
    n.mod_fields
    Fmt.(list ~sep:(any ", ") pp_field_key)
    n.ref_fields
