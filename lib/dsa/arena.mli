(** Node arena with union-find for the Data Structure Graph. Nodes are
    merged Steensgaard-style when the analysis discovers they may be the
    same object; merging unions attribute flags, alloc sites, mod/ref
    field sets, and recursively unifies points-to edges. *)

type field_key = string option
(** [Some f] when field-sensitive; [None] is the anonymous key used when
    field sensitivity is disabled (the ablation switch). *)

type node = {
  id : int;
  mutable parent : int;
  mutable rank : int;
  mutable ty : Nvmir.Ty.t option;  (** pointee type, when known *)
  mutable persistent : bool;
  mutable heap : bool;  (** created at an allocation site *)
  mutable unknown : bool;  (** synthesized for unresolved pointers *)
  mutable alloc_sites : (string * Nvmir.Loc.t) list;
  mutable edges : (field_key * int) list;  (** points-to, per field *)
  mutable mod_fields : field_key list;
  mutable ref_fields : field_key list;
  mutable names : string list;  (** variables known to point here *)
}

type t

val create : unit -> t
val node : t -> int -> node

val fresh :
  t ->
  ?ty:Nvmir.Ty.t ->
  ?persistent:bool ->
  ?heap:bool ->
  ?unknown:bool ->
  unit ->
  int

val find : t -> int -> int
(** Canonical representative (with path compression). *)

val compress : t -> unit
(** Fully compress every node's parent chain. After this (and absent
    further unions), [find] and [canonical] are read-only and safe to
    call from multiple domains concurrently. *)

val canonical : t -> int -> node

val unify : t -> int -> int -> unit
(** Merge two nodes, their attributes, and (recursively) the targets of
    matching field edges. *)

val edge_target : t -> int -> field_key -> int option

val ensure_edge : t -> int -> field_key -> int
(** Follow the field edge, creating an unknown target if missing. *)

val set_persistent : t -> int -> unit
val is_persistent : t -> int -> bool
val add_mod : t -> int -> field_key -> unit
val add_ref : t -> int -> field_key -> unit
val add_name : t -> int -> string -> unit
val add_alloc_site : t -> int -> string * Nvmir.Loc.t -> unit
val canonical_ids : t -> int list
val size : t -> int
val pp_field_key : field_key Fmt.t
val pp_node : t -> int Fmt.t
