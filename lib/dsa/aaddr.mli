(** Abstract addresses: the result of resolving an IR place through the
    DSG. The checking rules of Tables 4 and 5 are phrased over address
    equality/containment/overlap, decided here field-, index- and
    offset-sensitively. *)

(** Array-index abstraction: distinct constants are disjoint; a symbolic
    index conservatively overlaps everything. *)
type index = No_index | Const_index of int | Sym_index of string

(** Element-offset abstraction for pointer arithmetic: the congruence
    lattice over the offset polynomial base + k*stride (k over all
    integers). [Off_exact c] is the singleton offset c; [Off_stride]
    is the congruence class base mod stride (normalized to stride >= 1,
    0 <= base < stride); [Off_top] is a genuinely unknown offset and
    collapses the address back to whole-field granularity. *)
type offset =
  | Off_exact of int
  | Off_stride of { base : int; stride : int }
  | Off_top

type t = {
  node : int;  (** canonical DSG node of the containing object *)
  field : string option;  (** [None] = the whole object *)
  index : index;
  offset : offset;  (** element offset of the base pointer *)
}

val whole : int -> t
(** Whole-object address at offset 0. *)

val field : int -> string -> t
(** Field address at offset 0. *)

val off_stride : base:int -> stride:int -> offset
(** Normalizing constructor; [stride = 0] degenerates to [Off_exact]. *)

val off_shift : offset -> int -> offset
(** Add a known constant to an offset. *)

val off_neg : offset -> offset
val off_add : offset -> offset -> offset
val off_sub : offset -> offset -> offset
val off_mul : offset -> offset -> offset

val off_join : offset -> offset -> offset
(** Least upper bound in the congruence lattice. *)

val off_leq : offset -> offset -> bool
(** Lattice order: is every concrete offset of the first argument
    admitted by the second? *)

val off_may_equal : offset -> offset -> bool
(** May the two offset sets intersect? *)

val off_equal : offset -> offset -> bool
(** Definitely the same concrete offset (both exact and equal). *)

val pp_offset : offset Fmt.t
(** Prints nothing for [Off_exact 0], so offset-free addresses render
    exactly as they did before offsets existed. *)

val pp : t Fmt.t
val index_equal : index -> index -> bool
val index_may_equal : index -> index -> bool

val equal : t -> t -> bool
(** Definite identity: node, field and index agree and the offsets are
    provably the same concrete value. *)

val same_object : t -> t -> bool

val may_overlap : t -> t -> bool
(** May the two addresses denote overlapping memory? Whole-object
    addresses overlap every field of the same object; field addresses
    additionally require intersecting offset sets. *)

val contained_in : t -> t -> bool
(** [contained_in a b]: is [a] definitely covered by [b]? A whole-object
    [b] covers every offset; a field-granular [b] requires provably
    identical offsets. *)
