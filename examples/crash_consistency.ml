(* Crash-consistency demo: the Figure 1 hashmap bug is not just a rule
   violation on paper — injecting a crash at every persistent-memory
   event shows a real window where the durable state is inconsistent.
   The transactional fix closes the window.

     dune exec examples/crash_consistency.exe *)

(* Consistency invariant for the hashmap: if nbuckets is durable and
   non-zero, the bucket array initialization must also be durable
   (bucket 0 must hold the initialized marker, not the default 0...
   we initialize buckets to 1 to make "initialized" observable). *)

let buggy = {|
struct hashmap { nbuckets: int, buckets: int[4], seed: int }

func hashmap_create(h: ptr hashmap) {
entry:
  store h->nbuckets, 4           @ hash_map.c:120
  persist exact h->nbuckets      @ hash_map.c:121
  store h->buckets[0], 1         @ hash_map.c:116
  persist exact h->buckets[0]    @ hash_map.c:117
  ret
}

func main() {
entry:
  h = alloc pmem hashmap
  call hashmap_create(h)
  ret
}
|}

let fixed = {|
struct hashmap { nbuckets: int, buckets: int[4], seed: int }

func hashmap_create(h: ptr hashmap) {
entry:
  tx_begin
  tx_add exact h->nbuckets
  tx_add exact h->buckets[0]
  store h->nbuckets, 4
  store h->buckets[0], 1
  tx_end
  ret
}

func main() {
entry:
  h = alloc pmem hashmap
  call hashmap_create(h)
  ret
}
|}

(* The hashmap object is the first persistent allocation: object id 0.
   Slot 0 is nbuckets, slot 1 is buckets[0]. *)
let invariant pmem =
  let nbuckets =
    Runtime.Value.to_int
      (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot = 0 })
  in
  let bucket0 =
    Runtime.Value.to_int
      (Runtime.Pmem.durable_value pmem { Runtime.Pmem.obj_id = 0; slot = 1 })
  in
  if nbuckets <> 0 && bucket0 = 0 then
    Error
      (Fmt.str
         "nbuckets=%d is durable but the bucket array is not initialized"
         nbuckets)
  else Ok ()

(* The same invariant phrased over a value lookup, for the image-space
   oracle (which hands the invariant a materialized durable image
   rather than the live heap). *)
let image_invariant read =
  let v slot =
    Runtime.Value.to_int (read { Runtime.Pmem.obj_id = 0; slot })
  in
  if v 0 <> 0 && v 1 = 0 then
    Error
      (Fmt.str "nbuckets=%d is durable but the bucket array is not initialized"
         (v 0))
  else Ok ()

let run label src =
  let prog = Nvmir.Parser.parse src in
  let report = Runtime.Crash.test ~entry:"main" ~invariant prog in
  Fmt.pr "%-18s %a@." label Runtime.Crash.pp_report report

let run_space label src =
  let prog = Nvmir.Parser.parse src in
  let report =
    Runtime.Crash_space.test ~entry:"main" ~invariant:image_invariant prog
  in
  Fmt.pr "@[<v 2>%-18s@ %a@]@." label Runtime.Crash_space.pp_report report

let () =
  Fmt.pr
    "Injecting a crash after every persistent-memory event and checking@.the \
     durable state (only fenced data and committed transactions survive):@.@.";
  run "buggy hashmap:" buggy;
  run "fixed hashmap:" fixed;
  Fmt.pr
    "@.The buggy version has crash points where the map says it has buckets@.\
     but the bucket array never became durable; the transactional version@.\
     rolls back to the empty map at every crash point.@.";
  Fmt.pr
    "@.The prefix oracle above checks one image per crash point. The@.\
     crash-image explorer enumerates every reachable write-back subset@.\
     of the in-flight cache lines and checks each image, reporting the@.\
     persisted-subset witness for every inconsistency:@.@.";
  run_space "buggy hashmap:" buggy;
  run_space "fixed hashmap:" fixed
